/**
 * @file
 * Cross-interrogate (XI) message types and the client interface the
 * CPU's Load/Store Unit implements to participate in coherence.
 *
 * zEC12 coherence (paper §III.A): requests travel hierarchically; the
 * owning caches receive XIs. Demote-XIs move exclusive -> read-only,
 * Exclusive-XIs move exclusive -> invalid; both may be *rejected* by
 * the target (the paper's "stiff-arming"), in which case the sender
 * repeats the XI. Read-only-XIs invalidate shared copies and cannot
 * be rejected. LRU-XIs result from inclusivity evictions at higher
 * cache levels and cannot be rejected either.
 */

#ifndef ZTX_MEM_XI_HH
#define ZTX_MEM_XI_HH

#include <cstdint>

#include "common/types.hh"

namespace ztx::mem {

/** Kinds of cross interrogate. */
enum class XiKind : std::uint8_t
{
    ReadOnly,  ///< invalidate a read-only copy (not rejectable)
    Demote,    ///< exclusive -> read-only (rejectable)
    Exclusive, ///< exclusive -> invalid (rejectable)
    Lru        ///< inclusivity eviction from L2/L3/L4 (not rejectable)
};

/** Target's answer to a Demote or Exclusive XI. */
enum class XiResponse : std::uint8_t
{
    Accept,
    Reject
};

/** Human-readable XI kind name (stats/debug). */
const char *xiKindName(XiKind kind);

/** Everything the target LSU needs to evaluate an incoming XI. */
struct XiContext
{
    XiKind kind;
    Addr line;
    /** Requesting CPU; invalidCpu for LRU XIs. */
    CpuId requester;
    /** Target's L1 tx-read bit for this line (if still L1-resident). */
    bool txRead;
    /** Target's L1 tx-dirty bit for this line. */
    bool txDirty;
    /** Target's LRU-extension vector covers this line's L1 row. */
    bool lruExtHit;
    /** The line's cached image is poisoned (RAS model). */
    bool poisoned = false;
};

/**
 * Optional hook consulted whenever the hierarchy sends an XI: the
 * returned cycles are added to the requester's latency for that XI
 * round trip (the response arrives late; the protocol outcome is
 * unchanged). Used by the fault injector to model slow or congested
 * snoop responses; a null probe means no delay.
 */
class XiDelayProbe
{
  public:
    virtual ~XiDelayProbe() = default;

    /** Extra response latency for one @p kind XI to @p target. */
    virtual Cycles xiDelay(XiKind kind, CpuId target,
                           CpuId requester) = 0;
};

/**
 * Interface the hierarchy uses to consult a CPU about incoming XIs.
 * Implemented by the CPU core's LSU model.
 */
class CacheClient
{
  public:
    virtual ~CacheClient() = default;

    /**
     * Evaluate an incoming XI. Returning Reject is only legal for
     * Demote and Exclusive kinds. The implementation may abort its
     * transaction as a side effect (conflict or footprint loss).
     */
    virtual XiResponse incomingXi(const XiContext &ctx) = 0;

    /**
     * Notification that @p line was displaced from this CPU's L1 by
     * associativity pressure (it remains L2-resident). The hierarchy
     * has already recorded the LRU-extension row when applicable.
     */
    virtual void l1Evicted(Addr line, std::uint8_t flags) = 0;
};

} // namespace ztx::mem

#endif // ZTX_MEM_XI_HH
