/**
 * @file
 * Generic set-associative cache tag array with true-LRU replacement.
 *
 * The array tracks presence and per-line flag bits only; data lives in
 * MainMemory / the store cache (see DESIGN.md on the functional-vs-
 * timing split). The L1 instance additionally carries the tx-read and
 * tx-dirty bits the paper adds to the L1 directory latches.
 *
 * Layout and probing are built for the per-access hot path (DESIGN.md
 * §5b "per-access hot path"): tags, recency ticks, and flags live in
 * separate per-set arrays (SoA) with a per-set valid-way bitmask, so
 * a probe walks a compact tag vector instead of padded structs;
 * probeForInsert() resolves presence, the free way, and the LRU
 * victim in one pass, and touchAt()/insertAt() complete the access
 * against the returned slot without re-probing. The legacy
 * find/touch/insert entry points remain and are thin wrappers over
 * the fused path, so replacement order and victim choice are
 * bit-identical to the historical scan (way order breaks lastUse
 * comparisons, and ticks are unique by construction).
 */

#ifndef ZTX_MEM_CACHE_ARRAY_HH
#define ZTX_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/geometry.hh"

namespace ztx::mem {

/** Per-line flag bits stored in cache entries. */
namespace line_flag {

/** Line was read transactionally (paper's tx-read bit). */
inline constexpr std::uint8_t txRead = 0x1;

/** Line was stored to transactionally (paper's tx-dirty bit). */
inline constexpr std::uint8_t txDirty = 0x2;

/**
 * Cached image of the line is poisoned (RAS model). Best-effort
 * mirror of Hierarchy's poison map on L1 holders, surfaced in
 * XiContext; the map is the source of truth.
 */
inline constexpr std::uint8_t poison = 0x4;

} // namespace line_flag

/** Set-associative tag array; addresses are line-aligned. */
class CacheArray
{
  public:
    /** One way of one congruence class (forEachValid view). */
    struct Entry
    {
        Addr line = 0;
        bool valid = false;
        std::uint8_t flags = 0;
        std::uint64_t lastUse = 0;
    };

    /** Description of a line displaced by insert(). */
    struct Victim
    {
        bool valid = false;
        Addr line = 0;
        std::uint8_t flags = 0;
    };

    /**
     * Result of one fused probe (probeForInsert): presence, the
     * slot an insert would fill, and whether that insert would
     * displace a victim. Valid until the array is next mutated.
     */
    struct Probe
    {
        /** Entry slot (set * assoc + way) of the hit. */
        std::size_t idx = 0;
        bool hit = false;
        /** Slot an insertAt() would fill (miss only). */
        std::size_t slot = 0;
        /** insertAt() would displace the line in `slot`. */
        bool wouldEvict = false;
    };

    /**
     * @param geometry Size and associativity; rows are derived.
     * @param name For diagnostics.
     */
    CacheArray(const CacheGeometry &geometry, std::string name);

    /** True if @p line is present (no LRU update). */
    bool contains(Addr line) const;

    /** Flags of @p line; 0 if absent. */
    std::uint8_t flagsOf(Addr line) const;

    /** OR @p bits into the flags of @p line; line must be present. */
    void setFlags(Addr line, std::uint8_t bits);

    /** Clear @p bits from the flags of @p line if present. */
    void clearFlags(Addr line, std::uint8_t bits);

    /**
     * Clear @p bits from every valid entry's flags. Short-circuits
     * when no valid entry carries any flag bits (flaggedCount()),
     * so the per-TBEGIN tx-mark wipe is O(1) outside transactions.
     */
    void clearFlagsAll(std::uint8_t bits);

    /** @name Fused probes (hot path) @{ */
    /**
     * Presence + LRU bump in one probe: mark @p line most recently
     * used. @return True if present.
     */
    bool findAndTouch(Addr line);

    /**
     * One pass over @p line's congruence class resolving presence,
     * the slot a subsequent insertAt() would fill, and whether that
     * insert would displace a victim (the insertWouldEvict()
     * answer). Never mutates the array.
     */
    Probe probeForInsert(Addr line) const;

    /** Bump the LRU tick of the entry a Probe hit. */
    void
    touchAt(const Probe &p)
    {
        lastUse_[p.idx] = ++useTick_;
    }

    /**
     * Complete the insert a probeForInsert() miss prepared, without
     * re-probing. @p p must come from probeForInsert(@p line) on
     * the current array state with p.hit == false.
     */
    Victim insertAt(const Probe &p, Addr line,
                    std::uint8_t flags = 0);
    /** @} */

    /** Mark @p line most recently used; true if present. */
    bool touch(Addr line) { return findAndTouch(line); }

    /**
     * Insert @p line (must not be present), evicting the LRU way of
     * its congruence class when full.
     * @return The displaced line, if any.
     */
    Victim insert(Addr line, std::uint8_t flags = 0);

    /**
     * True if insert(@p line) would displace a victim right now:
     * the congruence class already holds effectiveAssoc() valid
     * lines. The sharded fast path uses this to defer accesses
     * whose install would have eviction side effects. O(1) on the
     * per-set valid mask.
     */
    bool insertWouldEvict(Addr line) const;

    /** Remove @p line; true if it was present. */
    bool invalidate(Addr line);

    /** Congruence class (row) index of @p line. */
    std::uint64_t
    row(Addr line) const
    {
        return (line >> lineSizeLog2) % rows_;
    }

    /** Number of congruence classes. */
    std::uint64_t rows() const { return rows_; }

    /** Ways per congruence class. */
    unsigned assoc() const { return assoc_; }

    /**
     * Limit replacement to @p ways effective ways per congruence
     * class (fault injection: capacity squeeze). While a row holds
     * at least this many valid lines, insert() evicts the LRU line
     * even when unused ways remain, so fills behave as if the array
     * were @p ways -way associative. 0 (or >= assoc()) restores the
     * configured geometry. Resident lines are never flushed eagerly.
     */
    void setEffectiveAssoc(unsigned ways);

    /** Current effective ways (== assoc() when not squeezed). */
    unsigned effectiveAssoc() const { return effAssoc_; }

    /** Count of valid entries (for tests/stats). */
    std::size_t validCount() const;

    /** Valid entries currently carrying any flag bits. */
    std::size_t flaggedCount() const { return flagged_; }

    /** Invoke @p fn(const Entry &) for every valid entry. */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (std::uint64_t set = 0; set < rows_; ++set) {
            std::uint32_t ways = validMask_[set];
            while (ways != 0) {
                const unsigned w = ctz32(ways);
                ways &= ways - 1;
                const std::size_t i = set * assoc_ + w;
                Entry entry;
                entry.line = tags_[i];
                entry.valid = true;
                entry.flags = flags_[i];
                entry.lastUse = lastUse_[i];
                fn(entry);
            }
        }
    }

    /** Array name (diagnostics). */
    const std::string &name() const { return name_; }

    /**
     * Verify the per-set metadata (valid masks, tag-to-set mapping,
     * tag uniqueness within a set, flagged-entry count) against a
     * ground-truth walk. @return Empty string when consistent, else
     * a description of the first violation (chaos-oracle hook).
     */
    std::string indexCheck() const;

  private:
    static unsigned ctz32(std::uint32_t v);

    /** Entry slot of @p line, or npos when absent. */
    std::size_t findIdx(Addr line) const;

    static constexpr std::size_t npos = ~std::size_t(0);

    std::uint64_t rows_;
    unsigned assoc_;
    unsigned effAssoc_;
    std::string name_;

    /** @name Per-set SoA metadata (slot = set * assoc + way) @{ */
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<std::uint8_t> flags_;
    /** Bit w set = way w of the set is valid (assoc <= 32). */
    std::vector<std::uint32_t> validMask_;
    /** @} */

    /** Valid entries with flags != 0 (clearFlagsAll short-circuit). */
    std::size_t flagged_ = 0;

    std::uint64_t useTick_ = 0;
};

} // namespace ztx::mem

#endif // ZTX_MEM_CACHE_ARRAY_HH
