/**
 * @file
 * Generic set-associative cache tag array with true-LRU replacement.
 *
 * The array tracks presence and per-line flag bits only; data lives in
 * MainMemory / the store cache (see DESIGN.md on the functional-vs-
 * timing split). The L1 instance additionally carries the tx-read and
 * tx-dirty bits the paper adds to the L1 directory latches.
 */

#ifndef ZTX_MEM_CACHE_ARRAY_HH
#define ZTX_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/geometry.hh"

namespace ztx::mem {

/** Per-line flag bits stored in cache entries. */
namespace line_flag {

/** Line was read transactionally (paper's tx-read bit). */
inline constexpr std::uint8_t txRead = 0x1;

/** Line was stored to transactionally (paper's tx-dirty bit). */
inline constexpr std::uint8_t txDirty = 0x2;

/**
 * Cached image of the line is poisoned (RAS model). Best-effort
 * mirror of Hierarchy's poison map on L1 holders, surfaced in
 * XiContext; the map is the source of truth.
 */
inline constexpr std::uint8_t poison = 0x4;

} // namespace line_flag

/** Set-associative tag array; addresses are line-aligned. */
class CacheArray
{
  public:
    /** One way of one congruence class. */
    struct Entry
    {
        Addr line = 0;
        bool valid = false;
        std::uint8_t flags = 0;
        std::uint64_t lastUse = 0;
    };

    /** Description of a line displaced by insert(). */
    struct Victim
    {
        bool valid = false;
        Addr line = 0;
        std::uint8_t flags = 0;
    };

    /**
     * @param geometry Size and associativity; rows are derived.
     * @param name For diagnostics.
     */
    CacheArray(const CacheGeometry &geometry, std::string name);

    /** True if @p line is present (no LRU update). */
    bool contains(Addr line) const;

    /** Flags of @p line; 0 if absent. */
    std::uint8_t flagsOf(Addr line) const;

    /** OR @p bits into the flags of @p line; line must be present. */
    void setFlags(Addr line, std::uint8_t bits);

    /** Clear @p bits from the flags of @p line if present. */
    void clearFlags(Addr line, std::uint8_t bits);

    /** Clear @p bits from every valid entry's flags. */
    void clearFlagsAll(std::uint8_t bits);

    /** Mark @p line most recently used; true if present. */
    bool touch(Addr line);

    /**
     * Insert @p line (must not be present), evicting the LRU way of
     * its congruence class when full.
     * @return The displaced line, if any.
     */
    Victim insert(Addr line, std::uint8_t flags = 0);

    /**
     * True if insert(@p line) would displace a victim right now:
     * the congruence class already holds effectiveAssoc() valid
     * lines. The sharded fast path uses this to defer accesses
     * whose install would have eviction side effects.
     */
    bool insertWouldEvict(Addr line) const;

    /** Remove @p line; true if it was present. */
    bool invalidate(Addr line);

    /** Congruence class (row) index of @p line. */
    std::uint64_t
    row(Addr line) const
    {
        return (line >> lineSizeLog2) % rows_;
    }

    /** Number of congruence classes. */
    std::uint64_t rows() const { return rows_; }

    /** Ways per congruence class. */
    unsigned assoc() const { return assoc_; }

    /**
     * Limit replacement to @p ways effective ways per congruence
     * class (fault injection: capacity squeeze). While a row holds
     * at least this many valid lines, insert() evicts the LRU line
     * even when unused ways remain, so fills behave as if the array
     * were @p ways -way associative. 0 (or >= assoc()) restores the
     * configured geometry. Resident lines are never flushed eagerly.
     */
    void setEffectiveAssoc(unsigned ways);

    /** Current effective ways (== assoc() when not squeezed). */
    unsigned effectiveAssoc() const { return effAssoc_; }

    /** Count of valid entries (for tests/stats). */
    std::size_t validCount() const;

    /** Invoke @p fn(const Entry &) for every valid entry. */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (const auto &entry : entries_)
            if (entry.valid)
                fn(entry);
    }

    /** Array name (diagnostics). */
    const std::string &name() const { return name_; }

  private:
    Entry *find(Addr line);
    const Entry *find(Addr line) const;
    Entry *setBase(Addr line);

    std::uint64_t rows_;
    unsigned assoc_;
    unsigned effAssoc_;
    std::string name_;
    std::vector<Entry> entries_;
    std::uint64_t useTick_ = 0;
};

} // namespace ztx::mem

#endif // ZTX_MEM_CACHE_ARRAY_HH
