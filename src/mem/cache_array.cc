#include "cache_array.hh"

#include <utility>

#include "common/log.hh"

namespace ztx::mem {

CacheArray::CacheArray(const CacheGeometry &geometry, std::string name)
    : rows_(geometry.rows()), assoc_(geometry.assoc),
      effAssoc_(geometry.assoc), name_(std::move(name))
{
    if (rows_ == 0 || assoc_ == 0)
        ztx_fatal("cache '", name_, "' has zero rows or ways");
    entries_.resize(rows_ * assoc_);
}

CacheArray::Entry *
CacheArray::setBase(Addr line)
{
    return &entries_[row(line) * assoc_];
}

CacheArray::Entry *
CacheArray::find(Addr line)
{
    Entry *base = setBase(line);
    for (unsigned w = 0; w < assoc_; ++w)
        if (base[w].valid && base[w].line == line)
            return &base[w];
    return nullptr;
}

const CacheArray::Entry *
CacheArray::find(Addr line) const
{
    return const_cast<CacheArray *>(this)->find(line);
}

bool
CacheArray::contains(Addr line) const
{
    return find(line) != nullptr;
}

std::uint8_t
CacheArray::flagsOf(Addr line) const
{
    const Entry *e = find(line);
    return e ? e->flags : 0;
}

void
CacheArray::setFlags(Addr line, std::uint8_t bits)
{
    Entry *e = find(line);
    if (!e)
        ztx_panic("setFlags on absent line in ", name_);
    e->flags |= bits;
}

void
CacheArray::clearFlags(Addr line, std::uint8_t bits)
{
    if (Entry *e = find(line))
        e->flags &= std::uint8_t(~bits);
}

void
CacheArray::clearFlagsAll(std::uint8_t bits)
{
    for (auto &entry : entries_)
        if (entry.valid)
            entry.flags &= std::uint8_t(~bits);
}

bool
CacheArray::touch(Addr line)
{
    Entry *e = find(line);
    if (!e)
        return false;
    e->lastUse = ++useTick_;
    return true;
}

CacheArray::Victim
CacheArray::insert(Addr line, std::uint8_t flags)
{
    if (lineOffset(line) != 0)
        ztx_panic("insert of non-line-aligned address in ", name_);
    if (find(line))
        ztx_panic("double insert of line in ", name_);

    Entry *base = setBase(line);
    Entry *slot = nullptr;
    unsigned valid_ways = 0;
    for (unsigned w = 0; w < assoc_; ++w)
        valid_ways += base[w].valid ? 1 : 0;
    // A capacity squeeze (effAssoc_ < assoc_) forces replacement as
    // soon as the effective ways are occupied, even while physical
    // ways remain free.
    if (valid_ways < effAssoc_) {
        for (unsigned w = 0; w < assoc_; ++w) {
            if (!base[w].valid) {
                slot = &base[w];
                break;
            }
        }
    }

    Victim victim;
    if (!slot) {
        // True LRU among the valid entries of the congruence class
        // (under a squeeze, invalid ways must stay unused).
        for (unsigned w = 0; w < assoc_; ++w) {
            if (!base[w].valid)
                continue;
            if (!slot || base[w].lastUse < slot->lastUse)
                slot = &base[w];
        }
        victim.valid = true;
        victim.line = slot->line;
        victim.flags = slot->flags;
    }

    slot->line = line;
    slot->valid = true;
    slot->flags = flags;
    slot->lastUse = ++useTick_;
    return victim;
}

bool
CacheArray::insertWouldEvict(Addr line) const
{
    const Entry *base =
        const_cast<CacheArray *>(this)->setBase(line);
    unsigned valid_ways = 0;
    for (unsigned w = 0; w < assoc_; ++w)
        valid_ways += base[w].valid ? 1 : 0;
    return valid_ways >= effAssoc_;
}

void
CacheArray::setEffectiveAssoc(unsigned ways)
{
    effAssoc_ = (ways == 0 || ways >= assoc_) ? assoc_ : ways;
}

bool
CacheArray::invalidate(Addr line)
{
    Entry *e = find(line);
    if (!e)
        return false;
    e->valid = false;
    e->flags = 0;
    return true;
}

std::size_t
CacheArray::validCount() const
{
    std::size_t n = 0;
    for (const auto &entry : entries_)
        n += entry.valid ? 1 : 0;
    return n;
}

} // namespace ztx::mem
