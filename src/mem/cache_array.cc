#include "cache_array.hh"

#include <bit>
#include <utility>

#include "common/log.hh"

namespace ztx::mem {

CacheArray::CacheArray(const CacheGeometry &geometry, std::string name)
    : rows_(geometry.rows()), assoc_(geometry.assoc),
      effAssoc_(geometry.assoc), name_(std::move(name))
{
    if (rows_ == 0 || assoc_ == 0)
        ztx_fatal("cache '", name_, "' has zero rows or ways");
    if (assoc_ > 32)
        ztx_fatal("cache '", name_,
                  "' associativity exceeds the valid-mask width");
    tags_.assign(rows_ * assoc_, 0);
    lastUse_.assign(rows_ * assoc_, 0);
    flags_.assign(rows_ * assoc_, 0);
    validMask_.assign(rows_, 0);
}

unsigned
CacheArray::ctz32(std::uint32_t v)
{
    return unsigned(std::countr_zero(v));
}

std::size_t
CacheArray::findIdx(Addr line) const
{
    const std::uint64_t set = row(line);
    const std::size_t base = std::size_t(set) * assoc_;
    std::uint32_t ways = validMask_[set];
    while (ways != 0) {
        const unsigned w = ctz32(ways);
        ways &= ways - 1;
        if (tags_[base + w] == line)
            return base + w;
    }
    return npos;
}

bool
CacheArray::contains(Addr line) const
{
    return findIdx(line) != npos;
}

std::uint8_t
CacheArray::flagsOf(Addr line) const
{
    const std::size_t i = findIdx(line);
    return i != npos ? flags_[i] : 0;
}

void
CacheArray::setFlags(Addr line, std::uint8_t bits)
{
    const std::size_t i = findIdx(line);
    if (i == npos)
        ztx_panic("setFlags on absent line in ", name_);
    if (flags_[i] == 0 && bits != 0)
        ++flagged_;
    flags_[i] |= bits;
}

void
CacheArray::clearFlags(Addr line, std::uint8_t bits)
{
    const std::size_t i = findIdx(line);
    if (i == npos)
        return;
    const std::uint8_t old = flags_[i];
    flags_[i] = std::uint8_t(old & ~bits);
    if (old != 0 && flags_[i] == 0)
        --flagged_;
}

void
CacheArray::clearFlagsAll(std::uint8_t bits)
{
    if (flagged_ == 0)
        return;
    for (std::uint64_t set = 0; set < rows_; ++set) {
        std::uint32_t ways = validMask_[set];
        while (ways != 0) {
            const unsigned w = ctz32(ways);
            ways &= ways - 1;
            const std::size_t i = std::size_t(set) * assoc_ + w;
            const std::uint8_t old = flags_[i];
            flags_[i] = std::uint8_t(old & ~bits);
            if (old != 0 && flags_[i] == 0)
                --flagged_;
        }
    }
}

bool
CacheArray::findAndTouch(Addr line)
{
    const std::size_t i = findIdx(line);
    if (i == npos)
        return false;
    lastUse_[i] = ++useTick_;
    return true;
}

CacheArray::Probe
CacheArray::probeForInsert(Addr line) const
{
    const std::uint64_t set = row(line);
    const std::size_t base = std::size_t(set) * assoc_;
    const std::uint32_t vmask = validMask_[set];

    Probe p;
    std::uint32_t ways = vmask;
    while (ways != 0) {
        const unsigned w = ctz32(ways);
        ways &= ways - 1;
        if (tags_[base + w] == line) {
            p.hit = true;
            p.idx = base + w;
            return p;
        }
    }

    const unsigned valid_ways = unsigned(std::popcount(vmask));
    // A capacity squeeze (effAssoc_ < assoc_) forces replacement as
    // soon as the effective ways are occupied, even while physical
    // ways remain free.
    p.wouldEvict = valid_ways >= effAssoc_;
    if (!p.wouldEvict) {
        const std::uint32_t all =
            assoc_ == 32 ? ~std::uint32_t(0)
                         : (std::uint32_t(1) << assoc_) - 1;
        p.slot = base + ctz32(~vmask & all);
    } else {
        // True LRU among the valid entries of the congruence class
        // (under a squeeze, invalid ways must stay unused). Ticks
        // are unique, so first-strictly-smaller matches the
        // historical way-order scan.
        std::size_t best = npos;
        ways = vmask;
        while (ways != 0) {
            const unsigned w = ctz32(ways);
            ways &= ways - 1;
            if (best == npos ||
                lastUse_[base + w] < lastUse_[best])
                best = base + w;
        }
        p.slot = best;
    }
    return p;
}

CacheArray::Victim
CacheArray::insertAt(const Probe &p, Addr line, std::uint8_t flags)
{
    if (p.hit)
        ztx_panic("double insert of line in ", name_);
    const std::size_t i = p.slot;
    const std::uint64_t set = i / assoc_;
    const unsigned w = unsigned(i % assoc_);
    const std::uint32_t bit = std::uint32_t(1) << w;

    Victim victim;
    if (p.wouldEvict) {
        victim.valid = true;
        victim.line = tags_[i];
        victim.flags = flags_[i];
        if (flags_[i] != 0)
            --flagged_;
    }
    tags_[i] = line;
    flags_[i] = flags;
    lastUse_[i] = ++useTick_;
    validMask_[set] |= bit;
    if (flags != 0)
        ++flagged_;
    return victim;
}

CacheArray::Victim
CacheArray::insert(Addr line, std::uint8_t flags)
{
    if (lineOffset(line) != 0)
        ztx_panic("insert of non-line-aligned address in ", name_);
    return insertAt(probeForInsert(line), line, flags);
}

bool
CacheArray::insertWouldEvict(Addr line) const
{
    return unsigned(std::popcount(validMask_[row(line)])) >=
           effAssoc_;
}

void
CacheArray::setEffectiveAssoc(unsigned ways)
{
    effAssoc_ = (ways == 0 || ways >= assoc_) ? assoc_ : ways;
}

bool
CacheArray::invalidate(Addr line)
{
    const std::size_t i = findIdx(line);
    if (i == npos)
        return false;
    if (flags_[i] != 0)
        --flagged_;
    flags_[i] = 0;
    validMask_[i / assoc_] &=
        ~(std::uint32_t(1) << unsigned(i % assoc_));
    return true;
}

std::size_t
CacheArray::validCount() const
{
    std::size_t n = 0;
    for (const std::uint32_t mask : validMask_)
        n += std::size_t(std::popcount(mask));
    return n;
}

std::string
CacheArray::indexCheck() const
{
    std::size_t flagged = 0;
    for (std::uint64_t set = 0; set < rows_; ++set) {
        const std::uint32_t all =
            assoc_ == 32 ? ~std::uint32_t(0)
                         : (std::uint32_t(1) << assoc_) - 1;
        if ((validMask_[set] & ~all) != 0)
            return name_ + ": valid mask has bits beyond assoc";
        std::uint32_t ways = validMask_[set];
        while (ways != 0) {
            const unsigned w = ctz32(ways);
            ways &= ways - 1;
            const std::size_t i = std::size_t(set) * assoc_ + w;
            if (row(tags_[i]) != set)
                return name_ + ": valid tag maps to another set";
            if (flags_[i] != 0)
                ++flagged;
            // Tags must be unique within the set.
            std::uint32_t rest = ways;
            while (rest != 0) {
                const unsigned w2 = ctz32(rest);
                rest &= rest - 1;
                if (tags_[std::size_t(set) * assoc_ + w2] ==
                    tags_[i])
                    return name_ + ": duplicate tag within a set";
            }
        }
    }
    if (flagged != flagged_)
        return name_ + ": flagged-entry count mismatch";
    return "";
}

} // namespace ztx::mem
