/**
 * @file
 * The zEC12-like cache hierarchy and SMP coherence engine.
 *
 * Owns the per-CPU L1/L2 tag arrays, per-chip L3, per-MCM L4, the
 * global coherence directory, the transactional bit planes the paper
 * adds to the L1 directory (tx-read / tx-dirty latches and the 64-row
 * LRU-extension vector), and the XI protocol with reject support.
 *
 * CPUs interact through fetch() and the tx-mark methods; incoming XIs
 * are delivered synchronously to the registered CacheClient of the
 * target CPU, which decides Accept/Reject and performs transaction
 * aborts as side effects. Latencies are returned to the caller as
 * cycle costs per the LatencyModel (see DESIGN.md).
 */

#ifndef ZTX_MEM_HIERARCHY_HH
#define ZTX_MEM_HIERARCHY_HH

#include <array>
#include <bitset>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"
#include "mem/directory.hh"
#include "mem/geometry.hh"
#include "mem/latency_model.hh"
#include "mem/topology.hh"
#include "mem/xi.hh"

namespace ztx::mem {

/** Outcome of a fetch request. */
struct AccessResult
{
    /** Total cycle cost of the access (or of the rejected attempt). */
    Cycles latency = 0;

    /** True if a Demote/Exclusive XI was stiff-armed; retry later. */
    bool rejected = false;

    /**
     * True when a local-only fetch (sharded parallel phase) would
     * have had to leave the shard: no state moved, nothing was
     * charged, and the step must be re-executed at the quantum
     * barrier. Distinct from `rejected`, which is an architectural
     * stiff-arm outcome that feeds the TM hang-avoidance ladder.
     */
    bool deferred = false;

    /**
     * True when a local-only fetch was resolved inside the parallel
     * phase by the shard-local fast path (same-chip L3 hit or
     * same-shard coherence) instead of deferring. Feeds the
     * scheduler's sched.l3_local_hits counter.
     */
    bool shardLocal = false;

    /** CPU that rejected the XI (valid when rejected). */
    CpuId rejecter = invalidCpu;

    /** Where the data came from (valid when !rejected). */
    DataSource source = DataSource::L1;
};

/** Four-level inclusive cache hierarchy with XI coherence. */
class Hierarchy
{
  public:
    Hierarchy(const Topology &topo, const LatencyModel &lat,
              const HierarchyGeometry &geo = HierarchyGeometry{});

    /** Register the XI client (the CPU's LSU model) for @p cpu. */
    void setClient(CpuId cpu, CacheClient *client);

    /**
     * Bring @p line into @p cpu's L1 in shared (read) or exclusive
     * (write) state, driving the full coherence protocol.
     *
     * @param cpu Requesting CPU.
     * @param line Line-aligned address.
     * @param exclusive True for store access (needs ownership).
     * @param local_only When true (sharded parallel phase), the
     *        access is serviced only if it stays inside the CPU's
     *        shard: private L1/L2 hits always, and — when a shard
     *        partition is registered — same-chip L3 hits and
     *        same-shard coherence actions via the shard-local fast
     *        path. Anything that would leave the shard returns
     *        deferred with no state moved and no counters charged.
     * @return latency/rejection outcome; on rejection no state moved.
     */
    AccessResult fetch(CpuId cpu, Addr line, bool exclusive,
                       bool local_only = false);

    /**
     * Register the sharded scheduler's partition so local-only
     * fetches can use the shard-local fast path (DESIGN.md §5b).
     * Shards are contiguous CPU id ranges: @p groups_per_chip core
     * groups per chip, in chip-major order. 0 clears the partition
     * (every non-private local-only access defers, the pre-fast-path
     * behaviour). The eligibility decision depends only on this
     * partition and on cache state that is stable across a parallel
     * phase — never on host-thread count or interleaving.
     */
    void setShardPartition(unsigned groups_per_chip,
                           unsigned active_cpus);

    /**
     * Forwarded to the coherence directory: while set, directory
     * entry creation (only possible via serial-path fetches) panics,
     * catching any fast-path access that escaped its shard.
     */
    void setConcurrentPhase(bool on) { dir_.setConcurrentPhase(on); }

    /**
     * @name L2 overflow (victim) buffer — DESIGN.md §5b
     *
     * Sub-chip shards may not evict from the L2 inside the parallel
     * phase: the displaced victim's directory entry can be homed to
     * a sibling group whose eligibility check reads it concurrently.
     * Instead of deferring every evicting install (the original SC2
     * rule, which shuts the fast path off entirely once the L2 is
     * warm), each CPU owns a small bounded overflow buffer that
     * absorbs the freshly fetched line. Buffered lines are logically
     * L2-resident — localHit(), eligibility, and the invariant
     * checker all consult the buffer — and the *real* insert plus
     * its eviction side effects (directory removal, inclusivity
     * LRU-XI) run serially at the quantum barrier via
     * drainL2Overflow(), in cpu-ascending FIFO order. Admission
     * depends only on own-CPU state, so defer decisions remain
     * independent of host-thread count; the deferred LRU-XI models a
     * castout buffer that delays the inclusivity probe to the end of
     * the quantum.
     * @{
     */
    /** Per-CPU overflow capacity (lines). */
    static constexpr unsigned l2OverflowCapacity = 8;

    /**
     * Perform the pending overflow installs for real: serial-phase
     * only (quantum barrier start, before any deferred step).
     */
    void drainL2Overflow();

    /** True if @p line is pending in @p cpu's overflow buffer. */
    bool inL2Overflow(CpuId cpu, Addr line) const;

    /** Occupied overflow slots of @p cpu (tests). */
    unsigned l2OverflowUsed(CpuId cpu) const
    {
        return l2Overflow_[cpu].n;
    }
    /** @} */

    /**
     * @name Transactional bit plane (paper §III.C)
     * @{
     */
    /** Set the tx-read latch for @p line (must be L1-resident). */
    void markTxRead(CpuId cpu, Addr line);

    /** Set the tx-dirty latch for @p line (must be L1-resident). */
    void markTxDirty(CpuId cpu, Addr line);

    /** Clear tx latches and the LRU-extension vector (TBEGIN/end). */
    void clearTxMarks(CpuId cpu);

    /**
     * Turn off the L1 valid bits of all tx-dirty lines (abort path:
     * "effectively removing them from the L1 instantaneously").
     * Lines remain L2-resident and exclusively owned.
     */
    void killTxDirtyLines(CpuId cpu);

    /** tx-read latch state of @p line in @p cpu's L1. */
    bool txRead(CpuId cpu, Addr line) const;

    /** tx-dirty latch state of @p line in @p cpu's L1. */
    bool txDirty(CpuId cpu, Addr line) const;

    /** True if @p cpu's LRU-extension row covers @p line. */
    bool lruExtensionHit(CpuId cpu, Addr line) const;

    /** True if any LRU-extension row is set for @p cpu. */
    bool lruExtensionAny(CpuId cpu) const;
    /** @} */

    /**
     * Enable/disable the LRU-extension scheme. With it disabled, a
     * tx-read line displaced from the L1 immediately aborts the
     * transaction (footprint limited to L1 capacity); this is the
     * "No LRU extension" ablation of Figure 5(f).
     */
    void setLruExtensionEnabled(bool enabled);

    /** @name Introspection for tests and stats @{ */
    bool inL1(CpuId cpu, Addr line) const;
    bool inL2(CpuId cpu, Addr line) const;
    bool inL3(unsigned chip, Addr line) const;
    bool inL4(unsigned mcm, Addr line) const;
    const CoherenceDirectory &directory() const { return dir_; }
    const Topology &topology() const { return topo_; }
    const LatencyModel &latencyModel() const { return lat_; }
    const HierarchyGeometry &geometry() const { return geo_; }
    // Hot-path fetch counters accumulate in per-CPU padded deltas
    // (no shared-counter contention in the parallel phase) and are
    // folded into the StatGroup whenever stats are observed.
    StatGroup &stats() { foldHotCounters(); return stats_; }
    const StatGroup &stats() const { foldHotCounters(); return stats_; }
    /** @} */

    /**
     * Verify the inclusivity and directory/array consistency
     * invariants; panics on violation (used by property tests).
     */
    void checkInvariants() const;

    /**
     * Verify every cache array's per-set metadata (valid masks,
     * tag-to-set mapping, flagged-entry counts) against a
     * ground-truth walk. @return Empty string when consistent, else
     * the first violation (chaos-oracle hook; soft-failing
     * counterpart of checkInvariants()).
     */
    std::string indexCheck() const;

    /**
     * @name Fault-injection hooks (src/inject)
     * @{
     */
    /** Register (or clear, with nullptr) the XI delay probe. */
    void setXiDelayProbe(XiDelayProbe *probe) { xiProbe_ = probe; }

    /**
     * Lines currently part of @p cpu's transactional footprint an
     * adversary can aim conflict XIs at: lines marked tx-read or
     * tx-dirty in the L1, plus evicted-but-tracked lines whose
     * tx-read promise lives on in an LRU-extension row. The latter
     * come from a per-CPU shadow list the hierarchy keeps alongside
     * the (imprecise, row-granular) extension vector.
     */
    std::vector<Addr> txFootprintLines(CpuId cpu) const;

    /**
     * The evicted-but-tracked lines of @p cpu: tx-read lines that
     * were displaced from the L1 while their promise was preserved
     * by an LRU-extension row. Cleared with the tx marks.
     */
    const std::vector<Addr> &lruTrackedLines(CpuId cpu) const
    {
        return lruExtTracked_[cpu];
    }

    /**
     * Send a hostile conflict XI for @p line to @p target on behalf
     * of no real requester: an Exclusive XI when the target owns the
     * line (rejectable — stiff-arming defends) or a ReadOnly XI when
     * it merely shares it (not rejectable). On Accept the line is
     * removed from the target, keeping the directory consistent, as
     * if a remote CPU had claimed it.
     * @return True if the line was taken (XI accepted), false if the
     *         target stiff-armed or does not hold the line.
     */
    bool injectAdversarialXi(CpuId target, Addr line);

    /**
     * Shrink @p cpu's effective L1/L2 associativity to @p l1_ways /
     * @p l2_ways (0 restores the configured geometry). Subsequent
     * fills behave as if the extra ways did not exist, forcing
     * capacity evictions — and through inclusivity, LRU-XI aborts —
     * long before the nominal cache size. Resident lines are not
     * flushed eagerly; they fall out through replacement.
     */
    void squeezeCapacity(CpuId cpu, unsigned l1_ways,
                         unsigned l2_ways);
    /** @} */

    /**
     * @name Line-poisoning RAS model (src/inject, DESIGN.md §5c)
     *
     * Poison is metadata on the functional line image (the arrays
     * hold tags only): the `cached` bit says some cached copy of the
     * line is corrupt, the `memory` bit says the home/memory image
     * itself is corrupt so a refresh-from-memory cannot scrub it.
     * Propagation (fetch intervention, castout, XI data transfer) is
     * counted but — by design — never escalates cached poison to the
     * memory image; memory-side poison exists only via injection.
     * @{
     */
    /** Poison state bits returned by poisonState(). */
    static constexpr std::uint8_t poisonCached = 0x1;
    static constexpr std::uint8_t poisonMemorySide = 0x2;

    /**
     * Inject poison on @p line (serial points only). With
     * @p memory_side the home image is corrupt too: scrubLine()
     * cannot recover it and the OS model kills/restarts instead.
     */
    void poisonLine(Addr line, bool memory_side);

    /** True if some cached copy of @p line is poisoned. */
    bool
    poisonedCached(Addr line) const
    {
        if (!poisonActive_)
            return false;
        const auto it = poison_.find(line);
        return it != poison_.end() && (it->second & poisonCached);
    }

    /** True if the memory image of @p line is poisoned. */
    bool
    poisonedMemory(Addr line) const
    {
        if (!poisonActive_)
            return false;
        const auto it = poison_.find(line);
        return it != poison_.end() && (it->second & poisonMemorySide);
    }

    /** Cheap gate: any line poisoned anywhere right now. */
    bool anyPoisoned() const { return poisonActive_; }

    /** Raw poison bits of @p line (tests). */
    std::uint8_t
    poisonState(Addr line) const
    {
        const auto it = poison_.find(line);
        return it == poison_.end() ? 0 : it->second;
    }

    /**
     * Machine-check recovery, step 1 (serial points only): refresh
     * the cached image of @p line from memory.
     * @return True if the scrub succeeded (memory image clean);
     *         false when the memory image is itself poisoned.
     */
    bool scrubLine(Addr line);

    /**
     * Machine-check recovery, step 2 for memory-side poison (serial
     * points only): the OS reinitializes the frame, clearing all
     * poison on @p line. Pairs with kill-and-restart of the
     * workload item that owned the data.
     */
    void reloadLine(Addr line);

    /**
     * True if @p line is currently part of @p cpu's transactional
     * footprint (tx-read/tx-dirty latch or evicted-but-tracked LRU
     * extension). Cheap single-line variant of txFootprintLines();
     * phase-safe (reads per-CPU state only).
     */
    bool inTxFootprint(CpuId cpu, Addr line) const;
    /** @} */

    /**
     * Invalidate every line of @p cpu's L1 and L2 (and its
     * directory holdings) — a cold-cache reset used by Monte-Carlo
     * harnesses that reuse one machine across trials. Must not be
     * called while the CPU has transactional marks outstanding.
     */
    void flushCpuCaches(CpuId cpu);

  private:
    /**
     * Counters touched by CPU-local fetch paths that may run
     * concurrently in the sharded scheduler's parallel phase. One
     * cache-line-padded slot per CPU, written only by that CPU's
     * host thread; folded idempotently into stats_ on observation.
     */
    struct alignas(64) HotCounters
    {
        std::uint64_t fetchTotal = 0;
        std::uint64_t l1Hit = 0;
        std::uint64_t l2Hit = 0;
        std::uint64_t l1Evict = 0;
        std::uint64_t lruExtSet = 0;
        std::uint64_t txDirtyKilled = 0;
        std::uint64_t fetchMiss = 0;
        std::uint64_t l2Evict = 0;
        /** Evicting fast-path installs absorbed by the buffer. */
        std::uint64_t l2OverflowAdmit = 0;
        // XI counters are indexed by the XI *target*, whose shard is
        // the one acting on its caches in the fast path.
        std::uint64_t xiReadOnly = 0;
        std::uint64_t xiDemote = 0;
        std::uint64_t xiExclusive = 0;
        std::uint64_t xiLru = 0;
        std::uint64_t xiRejected = 0;
        std::uint64_t xiDelayed = 0;
        // Poison propagation observed on this CPU's access paths.
        std::uint64_t poisonSpreadFetch = 0;
        std::uint64_t poisonSpreadCastout = 0;
        std::uint64_t poisonSpreadXi = 0;
    };

    void foldHotCounters() const;

    AccessResult localHit(CpuId cpu, Addr line);
    DataSource findSource(CpuId cpu, Addr line) const;
    void propagatePoisonOnFill(CpuId cpu, Addr line,
                               const DirectoryEntry &pre,
                               DataSource source);
    bool shardLocalEligible(CpuId cpu, Addr line,
                            const DirectoryEntry &e) const;
    DataSource shardLocalSource(CpuId cpu, Addr line) const;
    void installShardLocal(CpuId cpu, Addr line);

    /** Shard index of @p cpu under the registered partition. */
    unsigned
    shardOf(CpuId cpu) const
    {
        return topo_.chipOf(cpu) * shardGroupsPerChip_ +
               groupOf(cpu);
    }

    /** Core group of @p cpu within its chip. */
    unsigned
    groupOf(CpuId cpu) const
    {
        return (cpu % topo_.coresPerChip()) / shardGroupSize_;
    }

    /**
     * The core group holding in-phase mutation rights for @p line
     * within each chip (sub-chip partitions hash lines to groups so
     * two groups of one chip never race on a directory entry).
     */
    unsigned
    homeGroupOf(Addr line) const
    {
        return unsigned((line >> lineSizeLog2) % shardGroupsPerChip_);
    }
    XiResponse sendXi(XiKind kind, Addr line, CpuId target,
                      CpuId requester);
    Cycles probeDelay(XiKind kind, CpuId target, CpuId requester);
    void removeFromCpu(CpuId cpu, Addr line);
    void installLocal(CpuId cpu, Addr line);
    void insertL1(CpuId cpu, Addr line);
    /** insertL1 completing a probeForInsert miss without re-probing. */
    void insertL1At(CpuId cpu, Addr line,
                    const CacheArray::Probe &probe);
    void handleL2Evict(CpuId cpu, Addr victim);
    void handleL3Evict(unsigned chip, Addr victim);
    void handleL4Evict(unsigned mcm, Addr victim);
    CacheClient *client(CpuId cpu) const;

    Topology topo_;
    LatencyModel lat_;
    HierarchyGeometry geo_;
    CoherenceDirectory dir_;
    std::vector<CacheArray> l1_;
    std::vector<CacheArray> l2_;
    std::vector<CacheArray> l3_;
    std::vector<CacheArray> l4_;
    std::vector<CacheClient *> clients_;
    /** Per-CPU LRU-extension vector, one bit per L1 row. */
    std::vector<std::vector<bool>> lruExt_;
    /**
     * Per-CPU shadow of the extension vector at line granularity:
     * the tx-read lines actually displaced while tracked, so the
     * footprint stays enumerable for injection targeting.
     */
    std::vector<std::vector<Addr>> lruExtTracked_;
    bool lruExtEnabled_ = true;
    /**
     * Shard partition for the local fast path: 0 groups per chip
     * means no partition is registered (all non-private local-only
     * accesses defer). shardBits_[s] holds the CPU-id membership of
     * shard @c s; shardGroupSize_ is the contiguous-id width of one
     * core group.
     */
    unsigned shardGroupsPerChip_ = 0;
    unsigned shardGroupSize_ = 1;
    std::vector<std::bitset<maxDirectoryCpus>> shardBits_;
    /**
     * Per-CPU L2 overflow buffer (see the public doc block). Only
     * the owning CPU's shard mutates its buffer during a parallel
     * phase; the drain runs serially at the barrier.
     */
    struct OverflowBuf
    {
        std::array<Addr, l2OverflowCapacity> lines{};
        unsigned n = 0;
    };
    std::vector<OverflowBuf> l2Overflow_;
    /**
     * Whether the directory's L3-residency mask is maintained
     * (topologies beyond maxDirectoryChips chips cannot use it, and
     * therefore cannot register a shard partition either).
     */
    bool l3MaskTracked_ = true;
    /**
     * Poison bits per line (poisonCached/poisonMemorySide). Inserts
     * and erases happen at serial points only; in-phase code performs
     * lookups and value-only mutations of existing entries, which are
     * safe under shard confinement (no rehash, disjoint lines).
     */
    std::unordered_map<Addr, std::uint8_t> poison_;
    /** Fast gate for the common no-poison case (serial writes). */
    bool poisonActive_ = false;
    XiDelayProbe *xiProbe_ = nullptr;
    std::vector<HotCounters> hot_;
    mutable HotCounters hotFolded_{};
    mutable StatGroup stats_;
};

} // namespace ztx::mem

#endif // ZTX_MEM_HIERARCHY_HH
