#include "millicode.hh"

#include <algorithm>
#include <bit>
#include <string>

#include "common/log.hh"
#include "common/trace.hh"
#include "core/cpu.hh"
#include "tx/tdb.hh"

namespace ztx::millicode {

namespace {

/**
 * base << shift with the shift clamped so the product can neither
 * wrap 64-bit Cycles (adversarial abort counts, misconfigured max
 * shifts) nor exceed a sane backoff ceiling: 2^32 times the base is
 * already beyond any delay the escalation ladder should produce.
 */
Cycles
boundedShiftWindow(Cycles base, unsigned shift)
{
    if (base == 0)
        return 0;
    constexpr unsigned ceiling = 32;
    const unsigned headroom =
        unsigned(std::countl_zero(std::uint64_t(base)));
    return base << std::min({shift, headroom, ceiling});
}

} // namespace

void
MillicodeEngine::transactionAbort(core::Cpu &cpu,
                                  const core::AbortContext &ctx_in)
{
    if (!cpu.inTx())
        ztx_panic("transactionAbort while not in transactional mode");

    core::AbortContext ctx = ctx_in;
    if (ctx.code == 0)
        ctx.code = std::uint64_t(ctx.reason);

    cpu.stats_.counter("tx.aborts").inc();
    ++cpu.abortsTotal_;
    cpu.stats_.counter(std::string("tx.abort.") +
                       tx::abortReasonName(ctx.reason)).inc();
    ztx_trace(trace::Category::Millicode, "cpu", cpu.id_, " abort ",
              tx::abortReasonName(ctx.reason), " code=", ctx.code,
              " ia=0x", std::hex, cpu.psw_.ia);

    const bool was_constrained = cpu.constrained_;

    // Harvest the diagnostic state before anything is rolled back
    // (the hardware reads SPRs here).
    tx::Tdb tdb;
    tdb.abortCode = ctx.code;
    tdb.conflictToken = ctx.conflictAddr;
    tdb.conflictTokenValid = ctx.conflictValid;
    tdb.abortedIa = cpu.psw_.ia;
    tdb.interruptCode = ctx.interruptCode;
    tdb.translationExceptionAddr = ctx.interruptAddr;
    tdb.grs = cpu.regs_.gr;

    // Invalidate pending transactional stores (STQ and store cache;
    // NTSTG doublewords commit) and remove speculative L1 data.
    cpu.stq_.dropTransactional();
    cpu.storeCache_.abortTransaction(cpu.memory_);
    cpu.hier_.killTxDirtyLines(cpu.id_);
    cpu.hier_.clearTxMarks(cpu.id_);

    // Restore the GR pairs selected at the outermost TBEGIN. Mask
    // bit 0 (MSB) covers GRs 0-1, ... bit 7 covers GRs 14-15.
    for (unsigned pair = 0; pair < 8; ++pair) {
        if (cpu.savedGrsm_ & (0x80u >> pair)) {
            cpu.regs_.gr[2 * pair] = cpu.backupGrs_[2 * pair];
            cpu.regs_.gr[2 * pair + 1] = cpu.backupGrs_[2 * pair + 1];
        }
    }

    // PSW: condition code and resume address. Constrained
    // transactions resume at the TBEGINC itself (immediate retry,
    // no abort path); others resume after the TBEGIN.
    cpu.psw_.cc = tx::abortCc(ctx.reason, ctx.code);
    cpu.psw_.ia = was_constrained
                      ? cpu.tbeginAddr_
                      : cpu.tbeginAddr_ + cpu.tbeginLength_;

    Cycles cost = cpu.cfg_.abortMillicodeCost;
    if (cpu.tdbValid_ && !was_constrained) {
        tdb.store(cpu.memory_, cpu.tdbAddr_);
        cost += cpu.cfg_.tdbStoreCost;
    }
    if (ctx.interruptCode != tx::InterruptCode::None &&
        !ctx.filtered) {
        // Second TDB copy into the CPU prefix area on aborts caused
        // by program interruptions (post-mortem analysis, §II.E.1).
        tdb.store(cpu.memory_, cpu.prefixTdbAddr());
    }

    // Leave transactional-execution mode.
    cpu.txDepth_ = 0;
    cpu.txLevels_.clear();
    cpu.constrained_ = false;
    cpu.versionArmed_ = false; // aborted footprints are not recorded
    cpu.checker_.end();
    cpu.lastAbortCode_ = ctx.code;
    cpu.abortedDuringStep_ = true;
    cpu.rejectsSinceCompletion_ = 0;
    cpu.stalledOnReject_ = false;

    if (was_constrained) {
        const bool os_involved =
            ctx.reason == tx::AbortReason::ExternalInterrupt ||
            (ctx.interruptCode != tx::InterruptCode::None &&
             !ctx.filtered);
        if (os_involved) {
            // The OS may not return for a while; restart the ladder.
            cpu.constrainedAbortCount_ = 0;
        } else {
            ++cpu.constrainedAbortCount_;
            const unsigned count = cpu.constrainedAbortCount_;
            const auto &cfg = cpu.cfg_;
            if (count > cfg.constrainedDelayThreshold) {
                // Successively increasing random delays between
                // retries.
                const unsigned shift = std::min(
                    count - cfg.constrainedDelayThreshold,
                    cfg.constrainedDelayMaxShift);
                const Cycles window = boundedShiftWindow(
                    cfg.constrainedDelayBase, shift);
                if (window != 0) {
                    cost += cpu.rng_.nextBounded(window) + 1;
                    cpu.stats_
                        .counter("millicode.constrained_delays")
                        .inc();
                }
            }
            if (count >= cfg.constrainedSpeculationThreshold &&
                !cpu.speculationReduced_) {
                // "Reducing the amount of speculative execution to
                // avoid encountering aborts caused by speculative
                // accesses to data that the transaction is not
                // actually using" (paper §III.E).
                cpu.speculationReduced_ = true;
                cpu.stats_.counter("millicode.speculation_reduced")
                    .inc();
            }
            if (count >= cfg.constrainedSoloThreshold &&
                !cpu.soloHeld_) {
                // Last resort: broadcast to other CPUs to stop all
                // conflicting work until this transaction retires.
                cpu.env_.requestSolo(cpu.id_);
                cpu.soloHeld_ = true;
                cpu.stats_.counter("millicode.solo_requests").inc();
            }
        }
    }

    cpu.addStall(cost);
}

Cycles
MillicodeEngine::ppaDelay(core::Cpu &cpu, std::uint64_t abort_count)
{
    const auto &cfg = cpu.cfg_;
    const unsigned shift = unsigned(std::min<std::uint64_t>(
        abort_count, cfg.ppaMaxShift));
    const Cycles window =
        boundedShiftWindow(cfg.ppaBaseDelay, shift);
    cpu.stats_.counter("millicode.ppa").inc();
    if (window == 0)
        return 0; // assist configured away (ppaBaseDelay == 0)
    return cpu.rng_.nextBounded(window) + cfg.ppaBaseDelay;
}

void
MillicodeEngine::constrainedSuccess(core::Cpu &cpu)
{
    cpu.constrainedAbortCount_ = 0;
    cpu.speculationReduced_ = false;
    if (cpu.soloHeld_) {
        cpu.env_.releaseSolo(cpu.id_);
        cpu.soloHeld_ = false;
        cpu.stats_.counter("millicode.solo_releases").inc();
    }
}

} // namespace ztx::millicode
