/**
 * @file
 * The millicode (firmware) layer of the TX facility (paper §III.E).
 *
 * On zEC12, complex functions run in millicode: the transaction-abort
 * subroutine (harvest SPRs, store the TDB, restore backup GRs, fix up
 * the PSW), the PPA random-delay assist, and the constrained-
 * transaction retry bookkeeping with its escalation ladder
 * (increasing random delays -> reduced speculation -> broadcast-stop
 * of all other CPUs as the last resort that guarantees eventual
 * success).
 *
 * zTX models millicode as this engine operating on the CPU's state
 * with the same observable steps and a lump cycle cost.
 */

#ifndef ZTX_MILLICODE_MILLICODE_HH
#define ZTX_MILLICODE_MILLICODE_HH

#include <cstdint>

#include "common/types.hh"

namespace ztx::core {
class Cpu;
struct AbortContext;
} // namespace ztx::core

namespace ztx::millicode {

/** Firmware routines invoked by the CPU model. */
class MillicodeEngine
{
  public:
    /**
     * The transaction-abort subroutine. Discards transactional
     * stores (committing NTSTG doublewords), kills tx-dirty L1
     * lines, clears tx marks, restores the GR pairs selected by the
     * save mask, sets the abort condition code and the resume
     * instruction address (after TBEGIN, or at TBEGINC for
     * constrained transactions), stores the TDB when one was
     * specified (plus the prefix-area copy on program
     * interruptions), and runs the constrained-retry escalation.
     */
    static void transactionAbort(core::Cpu &cpu,
                                 const core::AbortContext &ctx);

    /**
     * PPA (function code TX): a random delay that grows with the
     * program-supplied abort count, tuned per machine generation so
     * software need not know the design parameters (§II.A).
     * @return Delay in cycles.
     */
    static Cycles ppaDelay(core::Cpu &cpu,
                           std::uint64_t abort_count);

    /**
     * Bookkeeping on successful completion of an outermost
     * constrained transaction: reset the abort counter and release
     * the broadcast-stop (solo mode) if it was the last resort used.
     */
    static void constrainedSuccess(core::Cpu &cpu);
};

} // namespace ztx::millicode

#endif // ZTX_MILLICODE_MILLICODE_HH
