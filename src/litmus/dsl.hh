/**
 * @file
 * The litmus-test DSL: named threads of transactional and
 * non-transactional loads/stores on named memory locations, an
 * allowed/forbidden final-state outcome set, and optional injected
 * fault steps (reusing the src/inject scenario machinery).
 *
 * Grammar (whitespace-separated tokens, `#` comments to end of
 * line; see DESIGN.md §5d for the full treatment):
 *
 *   test      := "litmus" NAME item*
 *   item      := init | thread | cond | fault | retries
 *   init      := "init" (LOC "=" NUM)+
 *   thread    := "thread" NAME "{" stmt* "}"
 *   stmt      := "ld" LOC REG | "st" LOC NUM | "add" LOC NUM
 *              | "ntst" LOC NUM | "abort" [NUM]
 *              | "tx" "{" stmt* "}" | "ctx" "{" stmt* "}"
 *   cond      := "allowed" ("*" | conj) | "forbidden" conj
 *   conj      := eq ("&" eq)*
 *   eq        := (LOC | NAME "." (REG | "ok")) "=" NUM
 *   fault     := "fault" trigger kind
 *   trigger   := "at_cycle" NUM | "on_footprint" LOC
 *              | "on_abort" (NAME | "*") NUM
 *   kind      := "conflict" LOC [NAME] | "poison" LOC
 *              | "poison_mem" LOC | "spurious" (NAME | "*")
 *   retries   := "retries" NUM
 *
 * `tx` blocks compile to a bounded TBEGIN retry loop (`retries`
 * attempts beyond the first; exhaustion clears the thread's `ok`
 * flag), `ctx` blocks to TBEGINC (the millicode guarantees
 * progress, so `ok` is always 1). `ntst` and `abort` are only legal
 * inside `tx`; `ctx` bodies are restricted to ld/st/add and checked
 * against the constrained-transaction footprint limits. Locations
 * are auto-declared on first use, each on its own cache line.
 */

#ifndef ZTX_LITMUS_DSL_HH
#define ZTX_LITMUS_DSL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace ztx::litmus {

/** One step of a thread program. */
struct Op
{
    enum class Kind : std::uint8_t
    {
        Load,    ///< ld LOC REG
        Store,   ///< st LOC NUM
        Add,     ///< add LOC NUM (load-add-store on one location)
        NtStore, ///< ntst LOC NUM (non-transactional store, tx only)
        Abort,   ///< abort [CODE] (TABORT, tx only)
        TxBegin, ///< start of a tx/ctx block
        TxEnd,   ///< end of a tx/ctx block
    };
    Kind kind = Kind::Load;
    unsigned loc = 0;          ///< location index (Load/Store/...)
    unsigned reg = 0;          ///< destination register (Load)
    std::uint64_t value = 0;   ///< store value / add delta / code
    bool constrained = false;  ///< TxBegin: TBEGINC instead of TBEGIN
};

/** A named thread: a flat op list with balanced tx markers. */
struct Thread
{
    std::string name;
    std::vector<Op> ops;
    /** 1 + highest register index loaded (observed registers). */
    unsigned numRegs = 0;
    bool hasTx = false;              ///< any tx or ctx block
    bool hasUnconstrainedTx = false; ///< any tx block (ok can be 0)
};

/** One equality of a final-state condition. */
struct Eq
{
    enum class Kind : std::uint8_t
    {
        Loc, ///< final memory value of a location
        Reg, ///< final value of a thread's observed register
        Ok,  ///< thread's tx success flag (1 = every block committed)
    };
    Kind kind = Kind::Loc;
    unsigned thread = 0; ///< Reg/Ok: thread index
    unsigned loc = 0;    ///< Loc: location index
    unsigned reg = 0;    ///< Reg: register index
    std::uint64_t value = 0;
};

/** A conjunction of equalities (one allowed/forbidden line). */
struct Cond
{
    std::vector<Eq> eqs;
};

/** An injected fault step (compiled to inject::ScenarioStep). */
struct Fault
{
    enum class Trigger : std::uint8_t
    {
        AtCycle,     ///< fire at a global cycle (seed-sensitive)
        OnFootprint, ///< fire when a location enters a tx footprint
        OnAbort,     ///< fire on a thread's (or any) N-th abort
    };
    Trigger trigger = Trigger::AtCycle;
    Cycles at = 0;            ///< AtCycle: fire cycle
    unsigned watchLoc = 0;    ///< OnFootprint: watched location
    int watchThread = -1;     ///< OnAbort: thread index; -1 = any
    std::uint64_t count = 1;  ///< OnAbort: fire on the count-th

    enum class Kind : std::uint8_t
    {
        Conflict,  ///< targeted conflict XI at a location's line
        Poison,    ///< poison the location's cached image
        PoisonMem, ///< poison cache + memory image (no scrub source)
        Spurious,  ///< spurious transaction abort
    };
    Kind kind = Kind::Conflict;
    unsigned loc = 0; ///< Conflict/Poison*: target location
    int target = -1;  ///< Conflict/Spurious: victim thread; -1 auto
};

/** A parsed litmus test. */
struct Test
{
    std::string name;
    /** Location names, in declaration order (one line each). */
    std::vector<std::string> locs;
    /** Initial value per location (parallel to locs; default 0). */
    std::vector<std::uint64_t> init;
    std::vector<Thread> threads;
    /** Disjunction of allowed conjunctions; empty + !allowAll means
     *  "only forbidden lines constrain the outcome set". */
    std::vector<Cond> allowed;
    bool allowAll = false; ///< `allowed *` was given
    std::vector<Cond> forbidden;
    std::vector<Fault> faults;
    /** TBEGIN retry attempts beyond the first per tx block. */
    unsigned retries = 2;
};

/** Result of parse(): either a test or a one-line error. */
struct ParseResult
{
    bool ok = false;
    Test test;
    std::string error;
};

/** Parse DSL source into a validated Test. */
ParseResult parse(std::string_view src);

/** Human-readable rendering of one op ("st x = 1", "tbegin"...). */
std::string describeOp(const Test &test, const Op &op);

} // namespace ztx::litmus

#endif // ZTX_LITMUS_DSL_HH
