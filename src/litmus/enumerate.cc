/**
 * @file
 * The litmus enumerator: DFS over decision prefixes with
 * commutativity reduction, plus the randomized-steer mode the
 * property tests cross-check against (see enumerate.hh).
 */

#include "litmus/enumerate.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "common/rng.hh"
#include "core/cpu.hh"
#include "core/op_recorder.hh"
#include "inject/fault_injector.hh"
#include "inject/steer.hh"

namespace ztx::litmus {

namespace {

/** OPLOG sink: a flat event list (litmus histories are tiny). */
class TraceRecorder final : public core::OpRecorder
{
  public:
    std::vector<OpEvent> events;

    void
    opInvoke(CpuId cpu, Cycles now, std::uint32_t code,
             std::uint64_t a0, std::uint64_t a1) override
    {
        (void)a0;
        (void)a1;
        events.push_back({cpu, now, true, code, 0});
    }

    void
    opResponse(CpuId cpu, Cycles now, std::uint64_t result) override
    {
        events.push_back({cpu, now, false, 0, result});
    }

    Json
    pendingOpJson(CpuId cpu) const override
    {
        (void)cpu;
        return Json();
    }
};

/** A decoded terminal state. */
struct Outcome
{
    std::vector<std::uint64_t> locVals;
    std::vector<std::vector<std::uint64_t>> regs; ///< per thread
    std::vector<int> ok; ///< per thread; -1 = no tx block
    std::string str;
};

Outcome
readOutcome(const Compiled &c, sim::Machine &m)
{
    Outcome o;
    std::ostringstream os;
    for (unsigned i = 0; i < c.test.locs.size(); ++i) {
        o.locVals.push_back(m.peekMem(c.locAddr[i], 8));
        if (i)
            os << ' ';
        os << c.test.locs[i] << '=' << o.locVals.back();
    }
    for (unsigned t = 0; t < c.test.threads.size(); ++t) {
        const Thread &th = c.test.threads[t];
        std::vector<std::uint64_t> regs;
        for (unsigned r = 0; r < th.numRegs; ++r) {
            regs.push_back(m.cpu(t).gr(litmusRegBase + r));
            os << ' ' << th.name << ".r" << r << '='
               << regs.back();
        }
        o.regs.push_back(std::move(regs));
        if (th.hasTx) {
            const int v = int(m.cpu(t).gr(litmusOkReg) & 1);
            o.ok.push_back(v);
            os << ' ' << th.name << ".ok=" << v;
        } else {
            o.ok.push_back(-1);
        }
    }
    o.str = os.str();
    return o;
}

bool
matches(const Cond &cond, const Outcome &o)
{
    for (const Eq &eq : cond.eqs) {
        std::uint64_t have = 0;
        switch (eq.kind) {
          case Eq::Kind::Loc:
            have = o.locVals.at(eq.loc);
            break;
          case Eq::Kind::Reg:
            have = o.regs.at(eq.thread).at(eq.reg);
            break;
          case Eq::Kind::Ok:
            have = std::uint64_t(std::max(0, o.ok.at(eq.thread)));
            break;
        }
        if (have != eq.value)
            return false;
    }
    return true;
}

/** Forbidden first; then the allowed set (when it constrains). */
bool
outcomeOk(const Test &t, const Outcome &o)
{
    for (const Cond &c : t.forbidden)
        if (matches(c, o))
            return false;
    if (t.allowAll || t.allowed.empty())
        return true;
    for (const Cond &c : t.allowed)
        if (matches(c, o))
            return true;
    return false;
}

/**
 * The steer driving one run: eager invisible stepping, prefix
 * replay at decision points, runnable-set recording for backtrack.
 * In random mode (rng set) decisions are uniform draws instead.
 *
 * Blocked-step reduction: a step whose access was stiff-armed by
 * another CPU's transaction retires nothing — same ia, no abort, no
 * architectural change. Re-offering that CPU as a candidate would
 * make the schedule tree infinite (the self-loop can be taken any
 * number of times), so a CPU whose chosen step made no progress is
 * *parked*: excluded from the candidate set until some other CPU
 * makes progress (which is what could unblock it). When every
 * visible candidate is parked — a mutual-stall duel, each side
 * stiff-arming the other's XIs — the steer branches once over the
 * duel winner and then *forces* that CPU, spinning it without
 * further branching until the loser's hang-avoidance threshold
 * (xiRejectAbortThreshold) aborts the loser and the winner's access
 * completes. Soundness: a no-progress step leaves the machine state
 * identical (modulo the opponent's reject counter, which only the
 * forced-spin path exercises), so every final state reachable
 * through the pruned self-loops is reachable without them.
 */
class EnumSteer final : public inject::ScheduleSteer
{
  public:
    const Compiled *c = nullptr;
    sim::Machine *m = nullptr;
    std::vector<unsigned> *prefix = nullptr;
    Rng *rng = nullptr; ///< random mode when set

    /** Visible candidate sets recorded at each decision. */
    std::vector<std::vector<CpuId>> sets;
    unsigned depth = 0;
    std::uint64_t steps = 0;
    std::uint64_t stepLimit = 0;
    bool capped = false;
    bool recordTrace = true;
    std::vector<TraceStep> trace;

    CpuId
    choose(const std::vector<CpuId> &runnable) override
    {
        if (steps >= stepLimit) {
            capped = true;
            return invalidCpu;
        }
        ++steps;

        if (parked_.empty())
            parked_.assign(m->numCpus(), false);

        // Progress bookkeeping for the previously stepped CPU: a
        // retired instruction moves ia, an abort bumps the abort
        // counter (constrained retries resume at the *same* ia),
        // and a halt is progress by definition. Any progress may
        // have unblocked a parked CPU, so the park set clears.
        if (last_ != invalidCpu) {
            const core::Cpu &prev = m->cpu(last_);
            const bool progressed = prev.halted() ||
                                    prev.psw().ia != lastIa_ ||
                                    prev.abortsTotal() !=
                                        lastAborts_;
            if (progressed) {
                std::fill(parked_.begin(), parked_.end(), false);
                if (forced_ == last_)
                    forced_ = invalidCpu;
            } else {
                parked_[last_] = true;
            }
        }

        // Forced spin (duel winner): keep stepping it, without
        // branching, until it progresses or halts.
        if (forced_ != invalidCpu && !m->cpu(forced_).halted())
            return pick(forced_, false);

        visible_.clear();
        CpuId firstInvisible = invalidCpu;
        for (const CpuId id : runnable) {
            if (visibleNext(*c, *m, id))
                visible_.push_back(id);
            else if (firstInvisible == invalidCpu)
                firstInvisible = id;
        }
        // Reduction: private steps commute — run them eagerly,
        // lowest id first, without branching.
        if (firstInvisible != invalidCpu)
            return pick(firstInvisible, false);

        candidates_.clear();
        for (const CpuId id : visible_)
            if (!parked_[id])
                candidates_.push_back(id);
        bool duel = false;
        if (candidates_.empty()) {
            // Mutual stall: branch over the winner, then force it.
            candidates_ = visible_;
            duel = true;
        }

        CpuId chosen;
        bool decision = candidates_.size() > 1;
        if (!decision) {
            chosen = candidates_.front();
        } else if (rng) {
            chosen =
                candidates_[rng->nextBounded(candidates_.size())];
        } else {
            if (depth == prefix->size())
                prefix->push_back(0);
            if (depth >= sets.size())
                sets.resize(depth + 1);
            sets[depth] = candidates_;
            if ((*prefix)[depth] >= candidates_.size())
                ztx_fatal("litmus replay divergence at decision ",
                          depth, ": prefix index ",
                          (*prefix)[depth], " of ",
                          candidates_.size(),
                          " candidates (non-deterministic "
                          "machine?)");
            chosen = candidates_[(*prefix)[depth]];
            ++depth;
        }
        if (duel)
            forced_ = chosen;
        return pick(chosen, decision);
    }

  private:
    CpuId
    pick(CpuId chosen, bool decision)
    {
        last_ = chosen;
        lastIa_ = m->cpu(chosen).psw().ia;
        lastAborts_ = m->cpu(chosen).abortsTotal();
        if (recordTrace)
            trace.push_back({chosen, lastIa_, m->now(), decision});
        return chosen;
    }

    std::vector<CpuId> visible_;
    std::vector<CpuId> candidates_;
    std::vector<bool> parked_;
    CpuId last_ = invalidCpu;
    Addr lastIa_ = 0;
    std::uint64_t lastAborts_ = 0;
    CpuId forced_ = invalidCpu;
};

/** Per-run machine wrapper: build, load, init memory, record. */
struct Run
{
    sim::MachineConfig cfg;
    sim::Machine m;
    TraceRecorder rec;

    Run(const Compiled &c, const EnumOptions &opt,
        inject::ScheduleSteer *steer, std::uint64_t seed)
        : cfg([&] {
              sim::MachineConfig k = c.config;
              k.seed = seed;
              k.hostThreads = opt.hostThreads;
              k.steer = steer;
              return k;
          }()),
          m(cfg)
    {
        for (unsigned i = 0; i < c.test.locs.size(); ++i)
            if (c.test.init[i])
                m.memory().write(c.locAddr[i], c.test.init[i], 8);
        for (unsigned t = 0; t < c.programs.size(); ++t) {
            m.setProgram(t, &c.programs[t]);
            m.cpu(t).setOpRecorder(&rec);
        }
    }

    std::uint64_t
    scenarioFired()
    {
        if (!m.injector())
            return 0;
        return m.injector()
            ->stats()
            .counter("scenario.fired")
            .value();
    }

    void
    fold(EnumResult &res)
    {
        res.simCycles += m.now();
        for (unsigned i = 0; i < m.numCpus(); ++i) {
            res.abortsTotal += m.cpu(i).abortsTotal();
            res.commitsTotal +=
                m.cpu(i).stats().counter("tx.commits").value();
            res.instructions +=
                m.cpu(i).stats().counter("instructions").value();
        }
        const std::uint64_t fired = scenarioFired();
        res.scenarioFiredTotal += fired;
        res.scenarioFiredMin =
            std::min(res.scenarioFiredMin, fired);
    }
};

} // namespace

EnumResult
enumerate(const Compiled &c, const EnumOptions &opt)
{
    EnumResult res;
    std::vector<unsigned> prefix;
    bool exhausted = false;

    while (!exhausted) {
        if (res.schedulesExplored >= opt.maxSchedules) {
            res.capped = true;
            if (res.capReason.empty())
                res.capReason = "schedules";
            break;
        }

        EnumSteer steer;
        steer.c = &c;
        steer.prefix = &prefix;
        steer.stepLimit = opt.maxStepsPerRun;
        Run run(c, opt, &steer, opt.seed);
        steer.m = &run.m;
        run.m.run();

        ++res.schedulesExplored;
        res.stepsTotal += steer.steps;
        res.decisionsTotal += steer.depth;
        res.maxDepth = std::max<std::uint64_t>(res.maxDepth,
                                               steer.depth);
        run.fold(res);

        const bool runCapped = steer.capped || !run.m.allHalted();
        if (runCapped) {
            // The terminal state of a capped run is not a real
            // outcome; the verdict can no longer be "ok".
            res.capped = true;
            if (res.capReason.empty())
                res.capReason = "steps";
        } else {
            const Outcome o = readOutcome(c, run.m);
            OutcomeInfo &info = res.outcomes[o.str];
            if (info.count++ == 0)
                info.ok = outcomeOk(c.test, o);
            if (!info.ok &&
                std::find(res.violations.begin(),
                          res.violations.end(),
                          o.str) == res.violations.end()) {
                res.violations.push_back(o.str);
                if (!res.witness) {
                    Witness w;
                    w.schedule = res.schedulesExplored - 1;
                    w.outcome = o.str;
                    w.steps = std::move(steer.trace);
                    w.events = std::move(run.rec.events);
                    res.witness = std::move(w);
                }
            }
        }

        // Backtrack: deepest decision with an unexplored sibling.
        // prefix.size() == steer.depth here — every entry was
        // either replayed or appended during the run.
        int d = int(prefix.size()) - 1;
        for (; d >= 0; --d) {
            if (prefix[d] + 1 < steer.sets[d].size()) {
                ++prefix[d];
                prefix.resize(d + 1);
                break;
            }
        }
        if (d < 0)
            exhausted = true;
    }

    if (!res.violations.empty())
        res.verdict = "violation";
    else if (res.capped)
        res.verdict = "frontier-capped";
    else
        res.verdict = "ok";
    return res;
}

RandomResult
runRandom(const Compiled &c, unsigned runs, std::uint64_t seed0,
          const EnumOptions &opt)
{
    RandomResult res;
    for (unsigned i = 0; i < runs; ++i) {
        Rng rng(seed0 + i);
        EnumSteer steer;
        steer.c = &c;
        steer.rng = &rng;
        steer.stepLimit = opt.maxStepsPerRun;
        steer.recordTrace = false;
        Run run(c, opt, &steer, opt.seed);
        steer.m = &run.m;
        run.m.run();
        if (steer.capped || !run.m.allHalted()) {
            ++res.cappedRuns;
            continue;
        }
        ++res.runs;
        ++res.outcomes[readOutcome(c, run.m).str];
    }
    return res;
}

Json
enumResultJson(const Compiled &c, const EnumResult &res)
{
    Json j = Json::object();
    j["test"] = c.test.name;
    j["verdict"] = res.verdict;
    j["capped"] = res.capped;
    j["cap_reason"] = res.capReason;
    j["schedules_explored"] = res.schedulesExplored;
    j["decisions"] = res.decisionsTotal;
    j["steps_total"] = res.stepsTotal;
    j["max_depth"] = res.maxDepth;
    j["outcomes_seen"] = std::uint64_t(res.outcomes.size());
    Json outs = Json::array();
    for (const auto &[state, info] : res.outcomes) {
        Json o = Json::object();
        o["state"] = state;
        o["count"] = info.count;
        o["ok"] = info.ok;
        outs.push(std::move(o));
    }
    j["outcomes"] = std::move(outs);
    Json viol = Json::array();
    for (const std::string &v : res.violations)
        viol.push(Json(v));
    j["violations"] = std::move(viol);
    j["commits"] = res.commitsTotal;
    j["aborts"] = res.abortsTotal;
    j["scenario_fired"] = res.scenarioFiredTotal;
    return j;
}

} // namespace ztx::litmus
