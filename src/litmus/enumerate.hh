/**
 * @file
 * Exhaustive-interleaving driver for litmus tests: stateless model
 * checking over the deterministic simulator.
 *
 * The enumerator performs a DFS over *decision prefixes*. Each
 * explored schedule builds a fresh machine (same compiled test,
 * same seed), installs an inject::ScheduleSteer, and replays a
 * vector of choice indices: at every point where more than one CPU
 * has a shared-visible next instruction (compile.hh visibleNext),
 * the steer consults the prefix — replaying recorded choices, then
 * extending greedily with choice 0. After the run it backtracks to
 * the deepest decision with an unexplored alternative. Because the
 * simulator is deterministic given the choice sequence, re-running
 * a prefix reproduces the identical runnable sets, so the recorded
 * frontier is exact.
 *
 * Reduction rule (soundness in DESIGN.md §5d): CPUs whose next
 * instruction is invisible (private registers, branches, oplog
 * brackets, halt) are stepped eagerly, lowest id first, without
 * branching — those steps commute with every other thread's next
 * step, so no reachable final state is lost. Termination comes from
 * the bounded tx retry budget, the constrained-tx escalation ladder
 * (solo mode collapses the runnable set to one CPU), and the
 * stiff-arm rejection threshold; a per-run step cap and a schedule
 * cap backstop both, and hitting either forces the verdict to
 * `frontier-capped` — never `ok`.
 *
 * Outcome semantics: a terminal state is the final memory value of
 * every location plus each thread's observed registers and tx `ok`
 * flag. A state matching any `forbidden` conjunction — or, when an
 * explicit `allowed` set is given, matching none of it — is a
 * violation; the first one captures a witness (the visible-step
 * trace plus the OPLOG history) for debug rendering.
 */

#ifndef ZTX_LITMUS_ENUMERATE_HH
#define ZTX_LITMUS_ENUMERATE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"
#include "litmus/compile.hh"

namespace ztx::litmus {

/** Enumeration bounds and machine knobs. */
struct EnumOptions
{
    /** Machine seed. Affects cycle values only, never verdicts
     *  (the corpus avoids the one seed-sensitive trigger,
     *  at_cycle). */
    std::uint64_t seed = 1;
    /** Requested host threads; steered machines force the legacy
     *  scheduler, so this must never change a verdict (asserted by
     *  the directed matrix test). */
    unsigned hostThreads = 0;
    /** Frontier cap: maximum schedules to explore. */
    std::uint64_t maxSchedules = 200000;
    /** Frontier cap: maximum steps within one schedule. */
    std::uint64_t maxStepsPerRun = 100000;
};

/** One visible step of an explored schedule (witness trace). */
struct TraceStep
{
    CpuId cpu = 0;
    Addr ia = 0;         ///< instruction address (disassembles)
    Cycles cycle = 0;    ///< seed-dependent; not part of verdicts
    bool decision = false; ///< more than one visible candidate
};

/** One OPLOG event (invoke or response) of a witness run. */
struct OpEvent
{
    CpuId cpu = 0;
    Cycles at = 0;
    bool invoke = false;
    std::uint32_t code = 0;     ///< thread << 8 | statement
    std::uint64_t value = 0;    ///< response: observed result
};

/** The violating schedule captured for debug rendering. */
struct Witness
{
    std::uint64_t schedule = 0; ///< index of the violating run
    std::string outcome;
    std::vector<TraceStep> steps;
    std::vector<OpEvent> events;
};

/** Aggregate info per distinct terminal state. */
struct OutcomeInfo
{
    std::uint64_t count = 0;
    bool ok = true; ///< false: forbidden or outside the allowed set
};

/** Everything an enumeration produced. */
struct EnumResult
{
    /** "ok" | "violation" | "frontier-capped". */
    std::string verdict;
    bool capped = false;
    std::string capReason; ///< "schedules" | "steps" | ""
    std::uint64_t schedulesExplored = 0;
    std::uint64_t decisionsTotal = 0;
    std::uint64_t stepsTotal = 0;
    std::uint64_t maxDepth = 0; ///< deepest decision prefix
    /** Distinct terminal states (ordered -> deterministic JSON). */
    std::map<std::string, OutcomeInfo> outcomes;
    /** Violating states in discovery order. */
    std::vector<std::string> violations;
    std::optional<Witness> witness;

    /** @name Cross-run machine stat sums @{ */
    std::uint64_t commitsTotal = 0;
    std::uint64_t abortsTotal = 0;
    std::uint64_t scenarioFiredTotal = 0;
    /** Minimum scenario fires in any single run (~0ULL when no
     *  runs): the OnFootprint regression checks this is >= 1, i.e.
     *  the directed fault fired inside *every* enumerated
     *  schedule. */
    std::uint64_t scenarioFiredMin = ~std::uint64_t(0);
    std::uint64_t simCycles = 0;
    std::uint64_t instructions = 0;
    /** @} */
};

/** Exhaustively enumerate @p compiled under @p opt. */
EnumResult enumerate(const Compiled &compiled,
                     const EnumOptions &opt = {});

/** Randomized (chaos-style) runs for the property test. */
struct RandomResult
{
    std::uint64_t runs = 0;       ///< completed (uncapped) runs
    std::uint64_t cappedRuns = 0;
    std::map<std::string, std::uint64_t> outcomes;
};

/**
 * Run @p runs random-steer schedules (uniform choice among visible
 * candidates, seeded seed0, seed0+1, ...) and tally terminal
 * states. Random outcomes must be a subset of the exhaustive set.
 */
RandomResult runRandom(const Compiled &compiled, unsigned runs,
                       std::uint64_t seed0,
                       const EnumOptions &opt = {});

/**
 * @p res as a JSON object. Deliberately excludes every
 * seed-dependent quantity (cycle values, the witness trace), so the
 * document is byte-identical across seeds and host-thread counts
 * for any test without at_cycle faults — the directed-matrix
 * contract.
 */
Json enumResultJson(const Compiled &compiled, const EnumResult &res);

} // namespace ztx::litmus

#endif // ZTX_LITMUS_ENUMERATE_HH
