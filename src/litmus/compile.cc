/**
 * @file
 * Litmus compiler: DSL ops -> assembled zTX programs, fault steps
 * -> inject::ScenarioSteps, plus the small machine template the
 * enumerator instantiates per schedule (see compile.hh).
 */

#include "litmus/compile.hh"

#include <string>

#include "common/log.hh"
#include "core/cpu.hh"
#include "isa/assembler.hh"
#include "isa/opcodes.hh"

namespace ztx::litmus {

namespace {

/** Scratch register for store/add data. */
constexpr unsigned grVal = 1;
/** BRCT retry counter. */
constexpr unsigned grRetry = 13;

void
emitBody(isa::Assembler &a, const Op &op,
         const std::vector<Addr> &locAddr)
{
    const Addr addr =
        op.kind == Op::Kind::Abort ? 0 : locAddr.at(op.loc);
    switch (op.kind) {
      case Op::Kind::Load:
        a.lg(litmusRegBase + op.reg, 0, std::int64_t(addr));
        break;
      case Op::Kind::Store:
        a.lhi(grVal, std::int64_t(op.value));
        a.stg(grVal, 0, std::int64_t(addr));
        break;
      case Op::Kind::Add:
        a.lg(grVal, 0, std::int64_t(addr));
        a.ahi(grVal, std::int64_t(op.value));
        a.stg(grVal, 0, std::int64_t(addr));
        break;
      case Op::Kind::NtStore:
        a.lhi(grVal, std::int64_t(op.value));
        a.ntstg(grVal, 0, std::int64_t(addr));
        break;
      case Op::Kind::Abort:
        a.tabort(0, std::int64_t(op.value));
        break;
      default:
        ztx_fatal("emitBody on a tx marker");
    }
}

isa::Program
compileThread(const Test &t, unsigned ti,
              const std::vector<Addr> &locAddr)
{
    const Thread &th = t.threads[ti];
    isa::Assembler a;
    a.lhi(litmusOkReg, 1);
    for (unsigned r = 0; r < th.numRegs; ++r)
        a.lhi(litmusRegBase + r, 0);

    unsigned stmt = 0; // top-level statement index (oplog code)
    for (std::size_t i = 0; i < th.ops.size(); ++i) {
        const Op &op = th.ops[i];
        const std::uint32_t code = (ti << 8) | stmt;
        if (op.kind == Op::Kind::TxBegin) {
            // Find the matching TxEnd (parse() guarantees balance
            // and no nesting).
            std::size_t end = i + 1;
            while (th.ops[end].kind != Op::Kind::TxEnd)
                ++end;
            const std::string sfx = std::to_string(stmt);
            a.oplogb(code, 0);
            if (op.constrained) {
                a.tbeginc(0xFF);
                for (std::size_t k = i + 1; k < end; ++k)
                    emitBody(a, th.ops[k], locAddr);
                a.tend();
            } else {
                a.lhi(grRetry, std::int64_t(t.retries) + 1);
                a.label("retry" + sfx);
                a.tbegin(0xFF);
                a.jnz("fail" + sfx);
                for (std::size_t k = i + 1; k < end; ++k)
                    emitBody(a, th.ops[k], locAddr);
                a.tend();
                a.j("done" + sfx);
                a.label("fail" + sfx);
                a.brct(grRetry, "retry" + sfx);
                a.lhi(litmusOkReg, 0);
                a.label("done" + sfx);
            }
            a.oploge(litmusOkReg);
            i = end;
        } else {
            a.oplogb(code, 0);
            emitBody(a, op, locAddr);
            a.oploge(op.kind == Op::Kind::Load
                         ? litmusRegBase + op.reg
                         : grVal);
        }
        ++stmt;
    }
    a.halt();
    return a.finish();
}

inject::ScenarioStep
compileFault(const Test &t, const Fault &f,
             const std::vector<Addr> &locAddr)
{
    inject::ScenarioStep s;
    switch (f.trigger) {
      case Fault::Trigger::AtCycle:
        s.trigger = inject::TriggerKind::AtCycle;
        s.at = f.at;
        break;
      case Fault::Trigger::OnFootprint:
        s.trigger = inject::TriggerKind::OnFootprint;
        s.line = locAddr.at(f.watchLoc);
        break;
      case Fault::Trigger::OnAbort:
        s.trigger = inject::TriggerKind::OnAbort;
        s.watch = f.watchThread < 0 ? invalidCpu
                                    : CpuId(f.watchThread);
        s.count = f.count;
        break;
    }
    switch (f.kind) {
      case Fault::Kind::Conflict:
        s.kind = inject::FaultKind::TargetedConflict;
        s.line = locAddr.at(f.loc);
        break;
      case Fault::Kind::Poison:
        s.kind = inject::FaultKind::PoisonLine;
        s.line = locAddr.at(f.loc);
        break;
      case Fault::Kind::PoisonMem:
        s.kind = inject::FaultKind::PoisonLine;
        s.line = locAddr.at(f.loc);
        s.poisonMemory = true;
        break;
      case Fault::Kind::Spurious:
        s.kind = inject::FaultKind::SpuriousAbort;
        break;
    }
    if (f.target >= 0)
        s.target = CpuId(f.target);
    (void)t;
    return s;
}

} // namespace

Compiled
compile(const Test &test)
{
    Compiled c;
    c.test = test;

    c.locAddr.reserve(test.locs.size());
    for (unsigned i = 0; i < test.locs.size(); ++i)
        c.locAddr.push_back(litmusDataBase +
                            Addr(i) * lineSizeBytes);

    for (unsigned t = 0; t < test.threads.size(); ++t)
        c.programs.push_back(compileThread(test, t, c.locAddr));

    for (const Fault &f : test.faults)
        c.plan.scenario.push_back(compileFault(test, f, c.locAddr));

    // Machine template: the smallest topology that carries the
    // thread count, and a geometry small enough that per-schedule
    // machine construction stays cheap (the litmus footprint is a
    // handful of lines; capacity behavior is chaos's job, not
    // litmus's).
    const unsigned n = unsigned(test.threads.size());
    c.config.topology =
        n <= 2 ? mem::Topology(2, 1, 1)
               : (n <= 4 ? mem::Topology(4, 1, 1)
                         : mem::Topology(6, 1, 1));
    c.config.activeCpus = n;
    c.config.geometry.l1 = {16 * 1024, 2};
    c.config.geometry.l2 = {64 * 1024, 4};
    c.config.geometry.l3 = {256 * 1024, 4};
    c.config.geometry.l4 = {1024 * 1024, 8};
    c.config.faults = c.plan;
    return c;
}

bool
visibleNext(const Compiled &compiled, const sim::Machine &m,
            CpuId id)
{
    const core::Cpu &cpu = m.cpu(id);
    const isa::Program::Slot *slot =
        compiled.programs.at(id).fetch(cpu.psw().ia);
    if (!slot)
        return true; // not ours to classify: assume shared-visible
    switch (slot->inst.op) {
      case isa::Opcode::LG:
      case isa::Opcode::LT:
      case isa::Opcode::LGFO:
      case isa::Opcode::STG:
      case isa::Opcode::CS:
      case isa::Opcode::NTSTG: {
        // The compiler emits absolute addressing (base 0), so the
        // displacement is the effective address.
        const Addr line = lineAlign(Addr(slot->inst.disp));
        for (const Addr a : compiled.locAddr)
            if (a == line)
                return true;
        return false;
      }
      case isa::Opcode::TBEGIN:
      case isa::Opcode::TBEGINC:
      case isa::Opcode::TEND:
      case isa::Opcode::TABORT:
      case isa::Opcode::PPA:
        // Transaction boundaries change how the CPU reacts to
        // other threads' traffic (and to injected faults), so
        // their ordering is enumerated.
        return true;
      default:
        return false;
    }
}

} // namespace ztx::litmus
