/**
 * @file
 * Compiles a parsed litmus Test into executable machine material:
 * one assembled program per thread, a per-location data layout (one
 * cache line each), an inject::FaultPlan carrying the test's fault
 * steps as scripted ScenarioSteps, and a small MachineConfig sized
 * for per-schedule machine construction (the enumerator builds a
 * fresh machine for every explored schedule, so the default 48
 * MB/384 MB cache geometry would dominate the run time).
 *
 * Register conventions (per thread):
 *   GR1       store/add scratch
 *   GR4..GR11 observed registers r0..r7 (zeroed in the prologue)
 *   GR12      ok flag (1; cleared when a tx exhausts its retries)
 *   GR13      tx retry budget (BRCT counter)
 *
 * A `tx` block compiles to a bounded retry loop:
 *
 *       LHI  13, retries+1
 *   Lr: TBEGIN 0xFF            ; GRSM saves/restores everything
 *       JNZ  Lf                ; abort resumes here with CC 2/3
 *       <body>
 *       TEND
 *       J    Ld
 *   Lf: BRCT 13, Lr            ; bounded: at most retries+1 attempts
 *       LHI  12, 0             ; exhausted -> ok = 0
 *   Ld:
 *
 * The bounded budget is what makes exhaustive enumeration finite:
 * every abort path rejoins a loop-free suffix after at most
 * retries+1 attempts. `ctx` blocks compile to TBEGINC..TEND and
 * lean on the millicode escalation ladder (whose last resort, solo
 * mode, the steered scheduler honors by restricting the runnable
 * set to the holder).
 *
 * Each top-level statement is bracketed by OPLOGB/OPLOGE pseudo-ops
 * (code = thread << 8 | statement index) so every run yields an
 * operation history for the debug rendering; brackets never go
 * inside tx bodies (OPLOG records are host-side and would record
 * aborted attempts as spurious nesting; constrained blocks reject
 * them architecturally).
 */

#ifndef ZTX_LITMUS_COMPILE_HH
#define ZTX_LITMUS_COMPILE_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "inject/fault_plan.hh"
#include "isa/program.hh"
#include "litmus/dsl.hh"
#include "sim/machine.hh"

namespace ztx::litmus {

/** Base address of the location data block (line-aligned). */
inline constexpr Addr litmusDataBase = 0x50'0000;

/** First observed register (DSL r0) in the GR file. */
inline constexpr unsigned litmusRegBase = 4;

/** GR holding the per-thread ok flag. */
inline constexpr unsigned litmusOkReg = 12;

/** A compiled litmus test, ready for the enumerator. */
struct Compiled
{
    Test test;
    /** One program per thread (thread i runs on CPU i). */
    std::vector<isa::Program> programs;
    /** Line-aligned address of each location. */
    std::vector<Addr> locAddr;
    /** Fault steps as a scripted scenario (empty plan when none). */
    inject::FaultPlan plan;
    /**
     * Machine template: small geometry, topology sized to the
     * thread count, plan attached. The enumerator copies this and
     * sets seed/steer per run.
     */
    sim::MachineConfig config;
};

/** Compile @p test (fatal on internal inconsistency — parse()
 *  validates everything user-facing). */
Compiled compile(const Test &test);

/**
 * Classification for the enumerator's partial-order reduction: true
 * when CPU @p id's *next* instruction can touch shared state (a
 * load/store to a litmus location or a transaction boundary), so
 * its ordering against other threads is a branch point. Private
 * bookkeeping (immediates, branches, oplog brackets, halt) is
 * invisible: it commutes with every other thread's next step and is
 * stepped eagerly without branching. Unknown instructions classify
 * as visible (soundness: extra decision points only add schedules).
 */
bool visibleNext(const Compiled &compiled, const sim::Machine &m,
                 CpuId id);

} // namespace ztx::litmus

#endif // ZTX_LITMUS_COMPILE_HH
