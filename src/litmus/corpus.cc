/**
 * @file
 * The litmus corpus (corpus.hh). Conventions: conflict-heavy tx
 * tests cap `retries` low to keep the enumeration frontier small
 * (every retry attempt multiplies the interleaving count); corpus
 * tests use only state-based fault triggers (on_footprint,
 * on_abort) so verdicts are seed-invariant — at_cycle appears once,
 * at cycle 0, which fires at the first step regardless of seed.
 */

#include "litmus/corpus.hh"

namespace ztx::litmus {

const std::vector<CorpusTest> &
corpus()
{
    static const std::vector<CorpusTest> tests = {

        // --- Classic shapes, non-transactional. The simulator is
        // sequentially consistent at step granularity (stores
        // become cross-CPU visible via XI-triggered drains), so
        // the classic relaxed outcomes are forbidden.

        {"sb", R"(
litmus sb
thread P0 { st x 1  ld y r0 }
thread P1 { st y 1  ld x r0 }
forbidden P0.r0=0 & P1.r0=0
allowed *
)"},

        {"mp", R"(
litmus mp
thread P0 { st x 1  st y 1 }
thread P1 { ld y r0  ld x r1 }
forbidden P1.r0=1 & P1.r1=0
allowed *
)"},

        {"lb", R"(
litmus lb
thread P0 { ld x r0  st y 1 }
thread P1 { ld y r0  st x 1 }
forbidden P0.r0=1 & P1.r0=1
allowed *
)"},

        {"s", R"(
litmus s
thread P0 { st x 2  st y 1 }
thread P1 { ld y r0  st x 1 }
forbidden P1.r0=1 & x=2
allowed *
)"},

        {"corr", R"(
litmus corr
thread P0 { st x 1 }
thread P1 { ld x r0  ld x r1 }
forbidden P1.r0=1 & P1.r1=0
allowed *
)"},

        {"iriw", R"(
litmus iriw
thread P0 { st x 1 }
thread P1 { st y 1 }
thread P2 { ld x r0  ld y r1 }
thread P3 { ld y r0  ld x r1 }
forbidden P2.r0=1 & P2.r1=0 & P3.r0=1 & P3.r1=0
allowed *
)"},

        // Exact outcome sets (no wildcard): any unlisted terminal
        // state is a violation.

        {"ww", R"(
litmus ww
thread P0 { st x 1 }
thread P1 { st x 2 }
allowed x=1
allowed x=2
)"},

        {"fr_own", R"(
litmus fr_own
thread P0 { st x 1  ld x r0 }
thread P1 { st y 3 }
allowed x=1 & y=3 & P0.r0=1
)"},

        {"inc_nontx", R"(
litmus inc_nontx
thread P0 { add x 1 }
thread P1 { add x 1 }
allowed x=1
allowed x=2
)"},

        // --- Transactional mixes.

        {"sb_tx", R"(
litmus sb_tx
retries 1
thread P0 { tx { st x 1  ld y r0 } }
thread P1 { tx { st y 1  ld x r0 } }
forbidden P0.r0=0 & P1.r0=0 & P0.ok=1 & P1.ok=1
allowed *
)"},

        {"sb_ctx", R"(
litmus sb_ctx
thread P0 { ctx { st x 1 }  ld y r0 }
thread P1 { ctx { st y 1 }  ld x r0 }
forbidden P0.r0=0 & P1.r0=0
allowed *
)"},

        {"mp_tx_writer", R"(
litmus mp_tx_writer
thread P0 { tx { st x 1  st y 1 } }
thread P1 { ld y r0  ld x r1 }
forbidden P1.r0=1 & P1.r1=0
allowed *
)"},

        {"mp_tx_reader", R"(
litmus mp_tx_reader
retries 1
thread P0 { st x 1  st y 1 }
thread P1 { tx { ld y r0  ld x r1 } }
forbidden P1.r0=1 & P1.r1=0 & P1.ok=1
allowed *
)"},

        {"mp_tx_both", R"(
litmus mp_tx_both
retries 1
thread P0 { tx { st x 1  st y 1 } }
thread P1 { tx { ld y r0  ld x r1 } }
forbidden P1.r0=1 & P1.r1=0 & P1.ok=1
allowed *
)"},

        {"mp_reader_ctx", R"(
litmus mp_reader_ctx
thread P0 { st x 1  st y 1 }
thread P1 { ctx { ld y r0  ld x r1 } }
forbidden P1.r0=1 & P1.r1=0
allowed *
)"},

        {"lb_tx", R"(
litmus lb_tx
retries 1
thread P0 { tx { ld x r0  st y 1 } }
thread P1 { tx { ld y r0  st x 1 } }
forbidden P0.r0=1 & P1.r0=1
allowed *
)"},

        {"corr_tx", R"(
litmus corr_tx
retries 1
thread P0 { st x 1 }
thread P1 { tx { ld x r0  ld x r1 } }
forbidden P1.r0=1 & P1.r1=0 & P1.ok=1
allowed *
)"},

        {"iriw_tx_readers", R"(
litmus iriw_tx_readers
retries 0
thread P0 { st x 1 }
thread P1 { st y 1 }
thread P2 { tx { ld x r0  ld y r1 } }
thread P3 { tx { ld y r0  ld x r1 } }
forbidden P2.r0=1 & P2.r1=0 & P3.r0=1 & P3.r1=0 & P2.ok=1 & P3.ok=1
allowed *
)"},

        // Serializability: the lost update x=1 with both commits is
        // the exact state transactions must exclude (inc_nontx
        // above allows it).

        {"inc_tx", R"(
litmus inc_tx
retries 1
thread P0 { tx { add x 1 } }
thread P1 { tx { add x 1 } }
allowed x=2 & P0.ok=1 & P1.ok=1
allowed x=1 & P0.ok=1 & P1.ok=0
allowed x=1 & P0.ok=0 & P1.ok=1
allowed x=0 & P0.ok=0 & P1.ok=0
)"},

        // Constrained transactions may not fail: the outcome set
        // has no ok=0 alternative (the paper's progress guarantee,
        // carried by the millicode ladder + solo mode).

        {"inc_ctx", R"(
litmus inc_ctx
thread P0 { ctx { add x 1 } }
thread P1 { ctx { add x 1 } }
allowed x=2
)"},

        {"ctx_vs_tx", R"(
litmus ctx_vs_tx
retries 1
thread P0 { ctx { add x 1 } }
thread P1 { tx { add x 1 } }
allowed x=2 & P1.ok=1
allowed x=1 & P1.ok=0
)"},

        // --- Abort-time semantics: rollback and NTSTG survival.

        {"tabort_rollback", R"(
litmus tabort_rollback
retries 0
thread P0 { tx { st x 1  abort } }
thread P1 { ld x r0 }
forbidden x=1
forbidden P1.r0=1
forbidden P0.ok=1
allowed *
)"},

        {"ntstg_survives", R"(
litmus ntstg_survives
retries 0
thread P0 { tx { st x 1  ntst y 7  abort } }
allowed x=0 & y=7 & P0.ok=0
)"},

        {"ntstg_abort_visible", R"(
litmus ntstg_abort_visible
retries 0
thread P0 { tx { ntst x 1  abort } }
thread P1 { ld x r0 }
forbidden x=0
forbidden P0.ok=1
allowed *
)"},

        {"mp_ntstg", R"(
litmus mp_ntstg
retries 0
thread P0 { tx { ntst x 1  ntst y 1  abort } }
thread P1 { ld y r0  ld x r1 }
forbidden x=0
forbidden y=0
allowed *
)"},

        // --- Injected-fault scenarios (state-based triggers).

        {"spurious_retry", R"(
litmus spurious_retry
retries 1
thread P0 { tx { ld x r0  st y 1 } }
thread P1 { st z 3 }
fault on_footprint x spurious P0
allowed x=0 & y=1 & z=3 & P0.r0=0 & P0.ok=1
allowed x=0 & y=0 & z=3 & P0.r0=0 & P0.ok=0
)"},

        {"conflict_directed", R"(
litmus conflict_directed
retries 1
thread P0 { tx { ld x r0  st y 1 } }
thread P1 { st z 3 }
fault on_footprint x conflict x
allowed x=0 & y=1 & z=3 & P0.r0=0 & P0.ok=1
allowed x=0 & y=0 & z=3 & P0.r0=0 & P0.ok=0
)"},

        {"ctx_conflict_progress", R"(
litmus ctx_conflict_progress
thread P0 { ctx { add x 1 } }
thread P1 { st y 2 }
fault on_footprint x conflict x
allowed x=1 & y=2
)"},

        {"xi_commit_window", R"(
litmus xi_commit_window
retries 1
thread P0 { tx { st x 1  st y 1 } }
thread P1 { st x 2 }
fault on_footprint y conflict y
forbidden x=0 & P0.ok=1
forbidden y=1 & P0.ok=0
allowed *
)"},

        {"onabort_cascade", R"(
litmus onabort_cascade
retries 1
thread P0 { tx { add x 1 } }
thread P1 { tx { add x 1 } }
fault on_abort * 1 spurious *
allowed x=2 & P0.ok=1 & P1.ok=1
allowed x=1 & P0.ok=1 & P1.ok=0
allowed x=1 & P0.ok=0 & P1.ok=1
allowed x=0 & P0.ok=0 & P1.ok=0
)"},

        {"poison_recover", R"(
litmus poison_recover
retries 2
thread P0 { tx { ld x r0  st y 1 } }
fault on_footprint x poison x
allowed x=0 & y=1 & P0.r0=0 & P0.ok=1
allowed x=0 & y=0 & P0.r0=0 & P0.ok=0
)"},

        {"poison_mem_read", R"(
litmus poison_mem_read
thread P0 { ld x r0 }
thread P1 { st y 1 }
fault at_cycle 0 poison_mem x
allowed *
)"},
    };
    return tests;
}

} // namespace ztx::litmus
