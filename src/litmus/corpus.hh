/**
 * @file
 * The in-tree litmus corpus: classic weak-memory shapes (SB, MP,
 * LB, IRIW, S, CoRR) in transactional / non-transactional /
 * constrained mixes, serializability (lost-update) exact sets,
 * NTSTG abort-survival, constrained-transaction progress under
 * directed conflicts, poison-during-tx recovery, and
 * XI-at-commit-window scenarios. Every test is expected to
 * enumerate to verdict "ok" on a correct simulator; several are
 * deliberately sharp enough to flip to "violation" when a known
 * guard (tx store rollback, commit atomicity, coherence order) is
 * reverted — see EXPERIMENTS.md.
 */

#ifndef ZTX_LITMUS_CORPUS_HH
#define ZTX_LITMUS_CORPUS_HH

#include <vector>

namespace ztx::litmus {

/** One corpus entry: a name (matches the DSL name) and source. */
struct CorpusTest
{
    const char *name;
    const char *src;
};

/** The full corpus, in a stable order. */
const std::vector<CorpusTest> &corpus();

} // namespace ztx::litmus

#endif // ZTX_LITMUS_CORPUS_HH
