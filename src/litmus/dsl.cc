/**
 * @file
 * Recursive-descent parser and validator for the litmus DSL
 * (grammar in dsl.hh / DESIGN.md §5d). Parsing never aborts the
 * process: every malformed input yields a one-line error naming the
 * offending token, so property tests can throw garbage at it.
 */

#include "litmus/dsl.hh"

#include <cctype>
#include <sstream>

namespace ztx::litmus {

namespace {

/** Tokens: words ([A-Za-z0-9_]+), punctuation `{ } = & * .`. */
struct Lexer
{
    std::string_view src;
    std::size_t pos = 0;

    std::string
    next()
    {
        while (pos < src.size()) {
            const char c = src[pos];
            if (c == '#') {
                while (pos < src.size() && src[pos] != '\n')
                    ++pos;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos;
            } else {
                break;
            }
        }
        if (pos >= src.size())
            return {};
        const char c = src[pos];
        if (c == '{' || c == '}' || c == '=' || c == '&' ||
            c == '*' || c == '.') {
            ++pos;
            return std::string(1, c);
        }
        std::size_t start = pos;
        while (pos < src.size()) {
            const char w = src[pos];
            if (std::isalnum(static_cast<unsigned char>(w)) ||
                w == '_')
                ++pos;
            else
                break;
        }
        if (pos == start) {
            ++pos; // unknown character: its own token, rejected later
            return std::string(1, c);
        }
        return std::string(src.substr(start, pos - start));
    }

    std::string
    peek()
    {
        const std::size_t saved = pos;
        std::string t = next();
        pos = saved;
        return t;
    }
};

bool
isKeyword(const std::string &t)
{
    return t == "litmus" || t == "init" || t == "thread" ||
           t == "allowed" || t == "forbidden" || t == "fault" ||
           t == "retries" || t == "ld" || t == "st" || t == "add" ||
           t == "ntst" || t == "abort" || t == "tx" || t == "ctx";
}

bool
isNumber(const std::string &t)
{
    if (t.empty())
        return false;
    for (const char c : t)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** Parser state: lexer + the test being built + error reporting. */
struct Parser
{
    Lexer lex;
    Test test;
    std::string error;

    bool
    fail(const std::string &what, const std::string &tok)
    {
        if (error.empty()) {
            error = what;
            if (!tok.empty())
                error += " near '" + tok + "'";
        }
        return false;
    }

    bool
    expect(const char *want)
    {
        const std::string t = lex.next();
        if (t != want)
            return fail(std::string("expected '") + want + "'", t);
        return true;
    }

    bool
    number(std::uint64_t &out, const char *what)
    {
        const std::string t = lex.next();
        if (!isNumber(t))
            return fail(std::string("expected ") + what, t);
        out = 0;
        for (const char c : t) {
            out = out * 10 + std::uint64_t(c - '0');
            if (out > 0xffff'ffffULL)
                return fail("number too large", t);
        }
        return true;
    }

    /** Look up or declare a location name. */
    bool
    locIndex(const std::string &t, unsigned &out)
    {
        if (t.empty() || isKeyword(t) || isNumber(t) ||
            !std::isalpha(static_cast<unsigned char>(t[0])))
            return fail("expected location name", t);
        for (unsigned i = 0; i < test.locs.size(); ++i)
            if (test.locs[i] == t) {
                out = i;
                return true;
            }
        if (test.locs.size() >= 8)
            return fail("too many locations (max 8)", t);
        out = unsigned(test.locs.size());
        test.locs.push_back(t);
        test.init.push_back(0);
        return true;
    }

    /** Thread index by name; -1 when unknown. */
    int
    threadIndex(const std::string &t) const
    {
        for (unsigned i = 0; i < test.threads.size(); ++i)
            if (test.threads[i].name == t)
                return int(i);
        return -1;
    }

    bool
    reg(std::string t, unsigned &out)
    {
        if (t.size() < 2 || t[0] != 'r' ||
            !isNumber(t.substr(1)))
            return fail("expected register r0..r7", t);
        const unsigned r = unsigned(t[1] - '0');
        if (t.size() != 2 || r > 7)
            return fail("expected register r0..r7", t);
        out = r;
        return true;
    }

    bool
    parseStmts(Thread &th, bool inTx, bool constrained)
    {
        while (true) {
            const std::string t = lex.peek();
            if (t == "}" || t.empty())
                return true;
            lex.next();
            if (t == "ld") {
                unsigned loc = 0, r = 0;
                if (!locIndex(lex.next(), loc) ||
                    !reg(lex.next(), r))
                    return false;
                th.ops.push_back({Op::Kind::Load, loc, r, 0, false});
                th.numRegs = std::max(th.numRegs, r + 1);
            } else if (t == "st" || t == "add" || t == "ntst") {
                unsigned loc = 0;
                std::uint64_t v = 0;
                if (!locIndex(lex.next(), loc) ||
                    !number(v, "store value"))
                    return false;
                if (v > 32767)
                    return fail("store value exceeds 32767 "
                                "(halfword immediate)",
                                std::to_string(v));
                if (t == "ntst" && (!inTx || constrained))
                    return fail("ntst is only legal inside tx", t);
                const Op::Kind k = t == "st"    ? Op::Kind::Store
                                   : t == "add" ? Op::Kind::Add
                                                : Op::Kind::NtStore;
                th.ops.push_back({k, loc, 0, v, false});
            } else if (t == "abort") {
                if (!inTx || constrained)
                    return fail("abort is only legal inside tx", t);
                std::uint64_t code = 256;
                if (isNumber(lex.peek()) &&
                    !number(code, "abort code"))
                    return false;
                th.ops.push_back(
                    {Op::Kind::Abort, 0, 0, code, false});
            } else if (t == "tx" || t == "ctx") {
                if (inTx)
                    return fail("nested transactions are not "
                                "supported",
                                t);
                const bool c = t == "ctx";
                th.ops.push_back({Op::Kind::TxBegin, 0, 0, 0, c});
                th.hasTx = true;
                if (!c)
                    th.hasUnconstrainedTx = true;
                if (!expect("{") || !parseStmts(th, true, c) ||
                    !expect("}"))
                    return false;
                th.ops.push_back({Op::Kind::TxEnd, 0, 0, 0, c});
            } else {
                return fail("unknown statement", t);
            }
        }
    }

    bool
    parseEq(Cond &cond)
    {
        Eq eq;
        const std::string t = lex.next();
        const int th = threadIndex(t);
        if (th >= 0) {
            if (!expect("."))
                return false;
            const std::string f = lex.next();
            if (f == "ok") {
                if (!test.threads[th].hasTx)
                    return fail("'.ok' on a thread without tx", t);
                eq.kind = Eq::Kind::Ok;
            } else {
                unsigned r = 0;
                if (!reg(f, r))
                    return false;
                if (r >= test.threads[th].numRegs)
                    return fail("register never loaded by thread",
                                f);
                eq.kind = Eq::Kind::Reg;
                eq.reg = r;
            }
            eq.thread = unsigned(th);
        } else {
            // A location (declared or fresh — conditions may
            // mention a location no thread touches).
            if (!locIndex(t, eq.loc))
                return false;
            eq.kind = Eq::Kind::Loc;
        }
        if (!expect("="))
            return false;
        std::uint64_t v = 0;
        if (!number(v, "condition value"))
            return false;
        eq.value = v;
        cond.eqs.push_back(eq);
        return true;
    }

    bool
    parseCond(Cond &cond)
    {
        if (!parseEq(cond))
            return false;
        while (lex.peek() == "&") {
            lex.next();
            if (!parseEq(cond))
                return false;
        }
        return true;
    }

    /** `NAME | *` as a thread operand; -1 for `*`. */
    bool
    threadOrAny(int &out)
    {
        const std::string t = lex.next();
        if (t == "*") {
            out = -1;
            return true;
        }
        out = threadIndex(t);
        if (out < 0)
            return fail("unknown thread", t);
        return true;
    }

    bool
    parseFault()
    {
        Fault f;
        const std::string trig = lex.next();
        if (trig == "at_cycle") {
            f.trigger = Fault::Trigger::AtCycle;
            std::uint64_t at = 0;
            if (!number(at, "cycle"))
                return false;
            f.at = at;
        } else if (trig == "on_footprint") {
            f.trigger = Fault::Trigger::OnFootprint;
            if (!locIndex(lex.next(), f.watchLoc))
                return false;
        } else if (trig == "on_abort") {
            f.trigger = Fault::Trigger::OnAbort;
            if (!threadOrAny(f.watchThread) ||
                !number(f.count, "abort count"))
                return false;
            if (f.count == 0)
                return fail("on_abort count must be >= 1", "0");
        } else {
            return fail("unknown fault trigger", trig);
        }

        const std::string kind = lex.next();
        if (kind == "conflict") {
            f.kind = Fault::Kind::Conflict;
            if (!locIndex(lex.next(), f.loc))
                return false;
            const std::string t = lex.peek();
            if (threadIndex(t) >= 0) {
                lex.next();
                f.target = threadIndex(t);
            }
        } else if (kind == "poison" || kind == "poison_mem") {
            f.kind = kind == "poison" ? Fault::Kind::Poison
                                      : Fault::Kind::PoisonMem;
            if (!locIndex(lex.next(), f.loc))
                return false;
        } else if (kind == "spurious") {
            f.kind = Fault::Kind::Spurious;
            if (!threadOrAny(f.target))
                return false;
            f.loc = f.trigger == Fault::Trigger::OnFootprint
                        ? f.watchLoc
                        : 0;
        } else {
            return fail("unknown fault kind", kind);
        }
        // The scenario machinery carries a single line per step
        // (watch line == fault operand), so an on_footprint fault
        // must aim at the watched location.
        if (f.trigger == Fault::Trigger::OnFootprint &&
            f.kind != Fault::Kind::Spurious && f.loc != f.watchLoc)
            return fail("on_footprint fault must target the "
                        "watched location",
                        test.locs[f.loc]);
        test.faults.push_back(f);
        return true;
    }

    bool
    run()
    {
        if (!expect("litmus"))
            return false;
        test.name = lex.next();
        if (test.name.empty() || isKeyword(test.name))
            return fail("expected test name", test.name);

        while (true) {
            const std::string t = lex.next();
            if (t.empty())
                break;
            if (t == "init") {
                // One or more LOC = NUM pairs.
                bool any = false;
                while (true) {
                    const std::string l = lex.peek();
                    if (l.empty() || isKeyword(l) || l == "}")
                        break;
                    unsigned loc = 0;
                    std::uint64_t v = 0;
                    if (!locIndex(lex.next(), loc) ||
                        !expect("=") || !number(v, "init value"))
                        return false;
                    if (v > 32767)
                        return fail("init value exceeds 32767", "");
                    test.init[loc] = v;
                    any = true;
                }
                if (!any)
                    return fail("empty init", t);
            } else if (t == "thread") {
                const std::string name = lex.next();
                if (name.empty() || isKeyword(name) ||
                    isNumber(name))
                    return fail("expected thread name", name);
                if (threadIndex(name) >= 0)
                    return fail("duplicate thread", name);
                if (test.threads.size() >= 6)
                    return fail("too many threads (max 6)", name);
                Thread th;
                th.name = name;
                if (!expect("{") || !parseStmts(th, false, false) ||
                    !expect("}"))
                    return false;
                test.threads.push_back(std::move(th));
            } else if (t == "allowed") {
                if (lex.peek() == "*") {
                    lex.next();
                    test.allowAll = true;
                } else {
                    Cond c;
                    if (!parseCond(c))
                        return false;
                    test.allowed.push_back(std::move(c));
                }
            } else if (t == "forbidden") {
                Cond c;
                if (!parseCond(c))
                    return false;
                test.forbidden.push_back(std::move(c));
            } else if (t == "fault") {
                if (!parseFault())
                    return false;
            } else if (t == "retries") {
                std::uint64_t r = 0;
                if (!number(r, "retry count"))
                    return false;
                if (r > 8)
                    return fail("retries capped at 8 (enumeration "
                                "frontier)",
                                std::to_string(r));
                test.retries = unsigned(r);
            } else {
                return fail("unknown directive", t);
            }
        }

        if (test.threads.empty())
            return fail("no threads", "");
        if (test.locs.empty())
            return fail("no locations", "");

        // Constrained blocks must fit the architectural limits
        // (tx/constraints.hh): each location is one octoword here,
        // so at most 4 distinct locations per ctx body; the
        // instruction-text budget caps body length.
        for (const Thread &th : test.threads) {
            bool inCtx = false;
            unsigned ops = 0;
            std::vector<unsigned> locsSeen;
            for (const Op &op : th.ops) {
                if (op.kind == Op::Kind::TxBegin && op.constrained) {
                    inCtx = true;
                    ops = 0;
                    locsSeen.clear();
                } else if (op.kind == Op::Kind::TxEnd &&
                           op.constrained) {
                    inCtx = false;
                } else if (inCtx) {
                    ++ops;
                    if (ops > 12)
                        return fail("ctx body too long (max 12 "
                                    "ops: 256-byte text limit)",
                                    th.name);
                    bool seen = false;
                    for (const unsigned l : locsSeen)
                        seen = seen || l == op.loc;
                    if (!seen)
                        locsSeen.push_back(op.loc);
                    if (locsSeen.size() > 4)
                        return fail("ctx body touches more than 4 "
                                    "locations (octoword limit)",
                                    th.name);
                }
            }
        }
        return true;
    }
};

} // namespace

ParseResult
parse(std::string_view src)
{
    Parser p;
    p.lex.src = src;
    ParseResult res;
    res.ok = p.run();
    if (res.ok)
        res.test = std::move(p.test);
    else
        res.error = p.error.empty() ? "parse error" : p.error;
    return res;
}

std::string
describeOp(const Test &test, const Op &op)
{
    std::ostringstream os;
    const auto loc = [&](unsigned i) {
        return i < test.locs.size() ? test.locs[i] : "?";
    };
    switch (op.kind) {
      case Op::Kind::Load:
        os << "ld " << loc(op.loc) << " r" << op.reg;
        break;
      case Op::Kind::Store:
        os << "st " << loc(op.loc) << " " << op.value;
        break;
      case Op::Kind::Add:
        os << "add " << loc(op.loc) << " " << op.value;
        break;
      case Op::Kind::NtStore:
        os << "ntst " << loc(op.loc) << " " << op.value;
        break;
      case Op::Kind::Abort:
        os << "abort " << op.value;
        break;
      case Op::Kind::TxBegin:
        os << (op.constrained ? "tbeginc" : "tbegin");
        break;
      case Op::Kind::TxEnd:
        os << "tend";
        break;
    }
    return os.str();
}

} // namespace ztx::litmus
