#include "rng.hh"

#include "log.hh"

namespace ztx {

namespace {

/** SplitMix64 step, used to expand the user seed into full state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    for (auto &word : state_)
        word = splitMix64(seed);
    // xoshiro256** must not start from the all-zero state; SplitMix64
    // cannot produce four zero outputs in a row, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        ztx_panic("Rng::nextBounded called with bound 0");
    // Rejection sampling over the largest multiple of bound.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace ztx
