/**
 * @file
 * Scoped phase profiler for the per-access hot paths.
 *
 * A profiling *site* is a named pair of accumulators (host cycles,
 * call count) registered once per process; a *scope* charges the
 * host-cycle delta between its construction and destruction to one
 * site. Sites live as function-local statics at the instrumented
 * code (ZTX_PROF_SCOPE), so adding one costs a single line and no
 * central registry edit.
 *
 * Profiling is off by default and enabled per process via
 * setEnabled() or the ZTX_PROF environment variable. When disabled
 * a scope is one predicted branch — no timestamp is read — so the
 * instrumentation may sit inside the per-access simulator paths
 * without a measurable cost.
 *
 * The accumulators hold *host* time (TSC ticks on x86, steady-clock
 * nanoseconds elsewhere). They therefore vary run to run and must
 * never feed simulated state or Machine::dumpStatsJson(), which the
 * determinism matrix byte-compares across host-thread counts; the
 * bench harness dumps snapshotJson() into the bench JSON `prof`
 * section only (validated by bench/json_check). Sites nest freely —
 * an outer site's cycles include its inner sites' — and the dump
 * reports sites sorted by name so the *shape* is stable even though
 * the values are wall-clock.
 */

#ifndef ZTX_COMMON_PROF_HH
#define ZTX_COMMON_PROF_HH

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/json.hh"

namespace ztx::prof {

namespace detail {

/** Process-wide on/off switch; plain bool, set before threads run. */
extern bool enabledFlag;

/** Cycle counter: TSC where available, steady-clock ns otherwise. */
inline std::uint64_t
now()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#else
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

} // namespace detail

/** One named accumulator; self-registers on construction. */
struct Site
{
    const char *name;
    /** Relaxed atomics: sites are shared by the shard threads. */
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> calls{0};
    Site *next = nullptr;

    explicit Site(const char *site_name);

    Site(const Site &) = delete;
    Site &operator=(const Site &) = delete;
};

/** True when profiling scopes are charging their sites. */
inline bool
enabled()
{
    return detail::enabledFlag;
}

/** Turn profiling on or off (call before the machine runs). */
void setEnabled(bool on);

/** Enable from the ZTX_PROF environment variable ("1"/"true"). */
bool enabledFromEnv();

/** Zero every site's accumulators (between bench records). */
void reset();

/**
 * Snapshot all sites as the bench-JSON `prof` section:
 * {"enabled": bool, "unit": "tsc"|"ns",
 *  "sites": [{"name", "cycles", "calls"}...]} with sites sorted by
 * name (only sites whose translation unit has run register; a
 * disabled run reports the registered sites with zero counts).
 */
Json snapshotJson();

/** RAII scope charging one site; no-op while disabled. */
class Scope
{
  public:
    explicit Scope(Site &site)
    {
        if (detail::enabledFlag) {
            site_ = &site;
            t0_ = detail::now();
        }
    }

    ~Scope()
    {
        if (site_) {
            site_->cycles.fetch_add(detail::now() - t0_,
                                    std::memory_order_relaxed);
            site_->calls.fetch_add(1, std::memory_order_relaxed);
        }
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Site *site_ = nullptr;
    std::uint64_t t0_ = 0;
};

} // namespace ztx::prof

#define ZTX_PROF_CONCAT2(a, b) a##b
#define ZTX_PROF_CONCAT(a, b) ZTX_PROF_CONCAT2(a, b)

/** Charge the rest of the enclosing block to site @p name. */
#define ZTX_PROF_SCOPE(name)                                          \
    static ::ztx::prof::Site ZTX_PROF_CONCAT(ztxProfSite_,            \
                                             __LINE__){name};         \
    ::ztx::prof::Scope ZTX_PROF_CONCAT(ztxProfScope_, __LINE__)       \
    {                                                                 \
        ZTX_PROF_CONCAT(ztxProfSite_, __LINE__)                       \
    }

#endif // ZTX_COMMON_PROF_HH
