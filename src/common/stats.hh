/**
 * @file
 * Lightweight statistics containers in the spirit of gem5's stats
 * package: named scalar counters, means, and histograms that modules
 * register into a StatGroup, with a text formatter for dumps.
 */

#ifndef ZTX_COMMON_STATS_HH
#define ZTX_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ztx {

class Json;

/** A named monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n events (default 1). */
    void
    inc(std::uint64_t n = 1)
    {
        value_ += n;
    }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (between measurement phases). */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max over a stream of samples. */
class Distribution
{
  public:
    Distribution() = default;

    /** Record one sample. */
    void sample(double v);

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Arithmetic mean; 0 if no samples. */
    double mean() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Smallest sample; 0 if no samples. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample; 0 if no samples. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Forget all samples. */
    void reset();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram over [0, bucketWidth * buckets). */
class Histogram
{
  public:
    /**
     * @param buckets Number of equal-width buckets.
     * @param bucket_width Width of each bucket; samples beyond the
     *        last bucket land in an overflow bucket.
     */
    Histogram(std::size_t buckets, double bucket_width);

    /** Record one sample. */
    void sample(double v);

    /** Count in bucket @p i (i == buckets() means overflow). */
    std::uint64_t bucketCount(std::size_t i) const;

    /** Number of regular buckets. */
    std::size_t buckets() const { return counts_.size() - 1; }

    /** Width of each regular bucket. */
    double bucketWidth() const { return bucketWidth_; }

    /** Total samples recorded. */
    std::uint64_t total() const { return total_; }

    /** Forget all samples. */
    void reset();

  private:
    std::vector<std::uint64_t> counts_; // last entry is overflow
    double bucketWidth_;
    std::uint64_t total_ = 0;
};

/**
 * A registry of named stats owned by a component; supports nested
 * group names ("cpu0.l1.hits") and a flat text dump.
 */
class StatGroup
{
  public:
    /** @param name Prefix prepended to every stat in dumps. */
    explicit StatGroup(std::string name);

    /** Create (or fetch) a counter under this group. */
    Counter &counter(const std::string &stat_name);

    /** Create (or fetch) a distribution under this group. */
    Distribution &distribution(const std::string &stat_name);

    /**
     * Create (or fetch) a histogram under this group. The shape
     * parameters apply on first registration only; later fetches
     * return the existing histogram unchanged.
     */
    Histogram &histogram(const std::string &stat_name,
                         std::size_t buckets, double bucket_width);

    /** @name Read-only views over the registered stats @{ */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return distributions_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    /** @} */

    /** Reset every stat in the group. */
    void resetAll();

    /** Write "name.stat value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /**
     * The group as a JSON object: counters plus full distribution
     * (count/mean/min/max/sum) and histogram (widths/buckets/
     * overflow) detail.
     */
    Json toJson() const;

    /** toJson(), serialized. */
    void dumpJson(std::ostream &os, int indent = -1) const;

    /** Group name. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace ztx

#endif // ZTX_COMMON_STATS_HH
