#include "prof.hh"

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>

namespace ztx::prof {

namespace detail {

bool enabledFlag = false;

/** Head of the lock-free site registry (push-only). */
std::atomic<Site *> siteHead{nullptr};

} // namespace detail

Site::Site(const char *site_name) : name(site_name)
{
    Site *head = detail::siteHead.load(std::memory_order_relaxed);
    do {
        next = head;
    } while (!detail::siteHead.compare_exchange_weak(
        head, this, std::memory_order_release,
        std::memory_order_relaxed));
}

void
setEnabled(bool on)
{
    detail::enabledFlag = on;
}

bool
enabledFromEnv()
{
    const char *v = std::getenv("ZTX_PROF");
    const bool on =
        v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
    setEnabled(on);
    return on;
}

void
reset()
{
    for (Site *s = detail::siteHead.load(std::memory_order_acquire);
         s != nullptr; s = s->next) {
        s->cycles.store(0, std::memory_order_relaxed);
        s->calls.store(0, std::memory_order_relaxed);
    }
}

Json
snapshotJson()
{
    // Aggregate by name: the same logical site may exist at several
    // code locations (e.g. the legacy and sharded step loops), and
    // sorted names keep the JSON shape deterministic.
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
        by_name;
    for (Site *s = detail::siteHead.load(std::memory_order_acquire);
         s != nullptr; s = s->next) {
        auto &acc = by_name[s->name];
        acc.first += s->cycles.load(std::memory_order_relaxed);
        acc.second += s->calls.load(std::memory_order_relaxed);
    }

    Json doc = Json::object();
    doc["enabled"] = enabled();
#if defined(__x86_64__) || defined(__i386__)
    doc["unit"] = "tsc";
#else
    doc["unit"] = "ns";
#endif
    Json arr = Json::array();
    for (const auto &[name, acc] : by_name) {
        Json site = Json::object();
        site["name"] = name;
        site["cycles"] = acc.first;
        site["calls"] = acc.second;
        arr.push(std::move(site));
    }
    doc["sites"] = std::move(arr);
    return doc;
}

} // namespace ztx::prof
