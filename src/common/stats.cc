#include "stats.hh"

#include <algorithm>
#include <utility>

#include "json.hh"
#include "log.hh"

namespace ztx {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / double(count_) : 0.0;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(std::size_t buckets, double bucket_width)
    : counts_(buckets + 1, 0), bucketWidth_(bucket_width)
{
    if (buckets == 0 || bucket_width <= 0.0)
        ztx_panic("Histogram needs >=1 bucket and positive width");
}

void
Histogram::sample(double v)
{
    std::size_t idx = buckets();
    if (v >= 0.0) {
        const auto raw = std::size_t(v / bucketWidth_);
        if (raw < buckets())
            idx = raw;
    } else {
        idx = 0; // clamp negatives into the first bucket
    }
    ++counts_[idx];
    ++total_;
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    if (i >= counts_.size())
        ztx_panic("Histogram bucket index out of range");
    return counts_[i];
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

Counter &
StatGroup::counter(const std::string &stat_name)
{
    return counters_[stat_name];
}

Distribution &
StatGroup::distribution(const std::string &stat_name)
{
    return distributions_[stat_name];
}

Histogram &
StatGroup::histogram(const std::string &stat_name,
                     std::size_t buckets, double bucket_width)
{
    return histograms_
        .try_emplace(stat_name, buckets, bucket_width)
        .first->second;
}

void
StatGroup::resetAll()
{
    for (auto &[unused_name, c] : counters_)
        c.reset();
    for (auto &[unused_name, d] : distributions_)
        d.reset();
    for (auto &[unused_name, h] : histograms_)
        h.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat, c] : counters_)
        os << name_ << '.' << stat << ' ' << c.value() << '\n';
    for (const auto &[stat, d] : distributions_) {
        os << name_ << '.' << stat << ".mean " << d.mean() << '\n';
        os << name_ << '.' << stat << ".count " << d.count() << '\n';
        os << name_ << '.' << stat << ".min " << d.min() << '\n';
        os << name_ << '.' << stat << ".max " << d.max() << '\n';
        os << name_ << '.' << stat << ".sum " << d.sum() << '\n';
    }
    for (const auto &[stat, h] : histograms_) {
        for (std::size_t i = 0; i < h.buckets(); ++i) {
            os << name_ << '.' << stat << ".bucket" << i << ' '
               << h.bucketCount(i) << '\n';
        }
        os << name_ << '.' << stat << ".overflow "
           << h.bucketCount(h.buckets()) << '\n';
        os << name_ << '.' << stat << ".total " << h.total()
           << '\n';
    }
}

Json
StatGroup::toJson() const
{
    Json group = Json::object();
    group["name"] = name_;

    Json counters = Json::object();
    for (const auto &[stat, c] : counters_)
        counters[stat] = c.value();
    group["counters"] = std::move(counters);

    Json dists = Json::object();
    for (const auto &[stat, d] : distributions_) {
        Json entry = Json::object();
        entry["count"] = d.count();
        entry["mean"] = d.mean();
        entry["min"] = d.min();
        entry["max"] = d.max();
        entry["sum"] = d.sum();
        dists[stat] = std::move(entry);
    }
    group["distributions"] = std::move(dists);

    Json hists = Json::object();
    for (const auto &[stat, h] : histograms_) {
        Json entry = Json::object();
        entry["bucket_width"] = h.bucketWidth();
        Json buckets = Json::array();
        for (std::size_t i = 0; i < h.buckets(); ++i)
            buckets.push(h.bucketCount(i));
        entry["buckets"] = std::move(buckets);
        entry["overflow"] = h.bucketCount(h.buckets());
        entry["total"] = h.total();
        hists[stat] = std::move(entry);
    }
    group["histograms"] = std::move(hists);
    return group;
}

void
StatGroup::dumpJson(std::ostream &os, int indent) const
{
    toJson().write(os, indent);
    os << '\n';
}

} // namespace ztx
