#include "json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "log.hh"

namespace ztx {

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        ztx_panic("Json::operator[] on a non-object");
    return obj_[key];
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        ztx_panic("Json::find on a non-object");
    const auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

bool
Json::contains(const std::string &key) const
{
    return find(key) != nullptr;
}

const Json::Object &
Json::items() const
{
    if (type_ != Type::Object)
        ztx_panic("Json::items on a non-object");
    return obj_;
}

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        ztx_panic("Json::push on a non-array");
    arr_.push_back(std::move(v));
}

const Json &
Json::at(std::size_t i) const
{
    if (type_ != Type::Array)
        ztx_panic("Json::at on a non-array");
    if (i >= arr_.size())
        ztx_panic("Json::at index out of range");
    return arr_[i];
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

double
Json::number() const
{
    if (type_ != Type::Number)
        ztx_panic("Json::number on a non-number");
    return num_;
}

std::uint64_t
Json::asUint() const
{
    if (type_ != Type::Number)
        ztx_panic("Json::asUint on a non-number");
    if (isUint_)
        return uint_;
    if (num_ < 0.0 || num_ != std::floor(num_))
        ztx_panic("Json::asUint on a non-integral number ", num_);
    return std::uint64_t(num_);
}

const std::string &
Json::str() const
{
    if (type_ != Type::String)
        ztx_panic("Json::str on a non-string");
    return str_;
}

bool
Json::boolean() const
{
    if (type_ != Type::Bool)
        ztx_panic("Json::boolean on a non-bool");
    return bool_;
}

namespace {

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeNumber(std::ostream &os, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; degrade to null rather than emit an
        // unparsable token.
        os << "null";
        return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), d);
    os.write(buf, res.ptr - buf);
}

void
newlineIndent(std::ostream &os, int indent, int depth)
{
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
Json::writeIndented(std::ostream &os, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Number:
        if (isUint_)
            os << uint_;
        else
            writeNumber(os, num_);
        break;
      case Type::String:
        writeEscaped(os, str_);
        break;
      case Type::Object: {
        os << '{';
        bool first = true;
        for (const auto &[key, value] : obj_) {
            if (!first)
                os << ',';
            first = false;
            if (pretty)
                newlineIndent(os, indent, depth + 1);
            writeEscaped(os, key);
            os << (pretty ? ": " : ":");
            value.writeIndented(os, indent, depth + 1);
        }
        if (pretty && !obj_.empty())
            newlineIndent(os, indent, depth);
        os << '}';
        break;
      }
      case Type::Array: {
        os << '[';
        bool first = true;
        for (const auto &value : arr_) {
            if (!first)
                os << ',';
            first = false;
            if (pretty)
                newlineIndent(os, indent, depth + 1);
            value.writeIndented(os, indent, depth + 1);
        }
        if (pretty && !arr_.empty())
            newlineIndent(os, indent, depth);
        os << ']';
        break;
      }
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

namespace {

/** Recursive-descent parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<Json>
    parseDocument()
    {
        auto v = parseValue();
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return std::nullopt;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return std::nullopt;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return std::nullopt;
                }
                // Only the BMP subset we ever emit; anything else
                // degrades to '?' rather than failing the parse.
                out += code < 0x80 ? char(code) : '?';
                break;
              }
              default:
                return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<Json>
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string_view tok = text_.substr(start, pos_ - start);
        if (tok.empty())
            return std::nullopt;
        const bool integral =
            tok.find_first_of(".eE") == std::string_view::npos;
        if (integral && tok[0] != '-') {
            std::uint64_t u = 0;
            const auto res = std::from_chars(
                tok.data(), tok.data() + tok.size(), u);
            if (res.ec == std::errc() &&
                res.ptr == tok.data() + tok.size())
                return Json(u);
        }
        double d = 0.0;
        const auto res =
            std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (res.ec != std::errc() ||
            res.ptr != tok.data() + tok.size())
            return std::nullopt;
        return Json(d);
    }

    std::optional<Json>
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size())
            return std::nullopt;
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            Json obj = Json::object();
            skipWs();
            if (consume('}'))
                return obj;
            while (true) {
                skipWs();
                auto key = parseString();
                if (!key)
                    return std::nullopt;
                skipWs();
                if (!consume(':'))
                    return std::nullopt;
                auto value = parseValue();
                if (!value)
                    return std::nullopt;
                obj[*key] = std::move(*value);
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return obj;
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::array();
            skipWs();
            if (consume(']'))
                return arr;
            while (true) {
                auto value = parseValue();
                if (!value)
                    return std::nullopt;
                arr.push(std::move(*value));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return arr;
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            return Json(std::move(*s));
        }
        if (consumeLiteral("true"))
            return Json(true);
        if (consumeLiteral("false"))
            return Json(false);
        if (consumeLiteral("null"))
            return Json(nullptr);
        return parseNumber();
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Json>
Json::parse(std::string_view text)
{
    return Parser(text).parseDocument();
}

} // namespace ztx
