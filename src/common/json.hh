/**
 * @file
 * Minimal JSON value: build, serialize, and parse. Backs the
 * machine-readable stats dumps and the bench JSON reports, so it
 * favors determinism (sorted object keys, shortest round-trip
 * number formatting) over speed or completeness.
 */

#ifndef ZTX_COMMON_JSON_HH
#define ZTX_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ztx {

/** A JSON document node (null, bool, number, string, object, array). */
class Json
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array
    };

    /** Objects keep sorted keys, so serialization is deterministic. */
    using Object = std::map<std::string, Json>;
    using Array = std::vector<Json>;

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(std::uint64_t u)
        : type_(Type::Number), num_(double(u)), uint_(u),
          isUint_(true)
    {
    }
    Json(std::int64_t i) : type_(Type::Number), num_(double(i))
    {
        if (i >= 0) {
            uint_ = std::uint64_t(i);
            isUint_ = true;
        }
    }
    Json(int i) : Json(std::int64_t(i)) {}
    Json(unsigned u) : Json(std::uint64_t(u)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** An empty object (distinct from null). */
    static Json object();

    /** An empty array (distinct from null). */
    static Json array();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }

    /** @name Object access (fatal on other types) @{ */
    /** Fetch-or-create a member; a null node becomes an object. */
    Json &operator[](const std::string &key);
    /** Member lookup; nullptr when absent. */
    const Json *find(const std::string &key) const;
    bool contains(const std::string &key) const;
    const Object &items() const;
    /** @} */

    /** @name Array access (fatal on other types) @{ */
    /** Append an element; a null node becomes an array. */
    void push(Json v);
    const Json &at(std::size_t i) const;
    /** @} */

    /** Elements of an array / members of an object; 0 otherwise. */
    std::size_t size() const;

    /** @name Scalar access (fatal on type mismatch) @{ */
    double number() const;
    /** The number as an unsigned integer (fatal if not exact). */
    std::uint64_t asUint() const;
    const std::string &str() const;
    bool boolean() const;
    /** @} */

    /**
     * Serialize.
     * @param indent Spaces per nesting level; negative for compact
     *        single-line output.
     */
    void write(std::ostream &os, int indent = -1) const;

    /** write() into a string. */
    std::string dump(int indent = -1) const;

    /**
     * Parse a complete JSON document (trailing garbage rejected).
     * @return The value, or nullopt on malformed input.
     */
    static std::optional<Json> parse(std::string_view text);

  private:
    void writeIndented(std::ostream &os, int indent,
                       int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::uint64_t uint_ = 0;
    /** True when the number was set from an (exact) integer. */
    bool isUint_ = false;
    std::string str_;
    Object obj_;
    Array arr_;
};

} // namespace ztx

#endif // ZTX_COMMON_JSON_HH
