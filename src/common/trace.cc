#include "trace.hh"

#include <cstdlib>
#include <iostream>

namespace ztx::trace {

namespace {

std::uint32_t &
mask()
{
    static std::uint32_t value = 0;
    return value;
}

std::ostream *&
sink()
{
    static std::ostream *s = nullptr;
    return s;
}

struct EnvInit
{
    EnvInit()
    {
        if (const char *env = std::getenv("ZTX_TRACE"))
            enableFromString(env);
    }
};

EnvInit envInit;

} // namespace

void
enable(Category category)
{
    mask() |= std::uint32_t(category);
}

void
disable(Category category)
{
    mask() &= ~std::uint32_t(category);
}

void
disableAll()
{
    mask() = 0;
}

bool
enabled(Category category)
{
    return mask() & std::uint32_t(category);
}

const char *
categoryName(Category category)
{
    switch (category) {
      case Category::Tx: return "tx";
      case Category::Xi: return "xi";
      case Category::Cache: return "cache";
      case Category::Millicode: return "millicode";
      case Category::Io: return "io";
      case Category::Exec: return "exec";
    }
    return "?";
}

void
enableFromString(const std::string &spec)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string name = spec.substr(pos, comma - pos);
        for (const Category c :
             {Category::Tx, Category::Xi, Category::Cache,
              Category::Millicode, Category::Io, Category::Exec}) {
            if (name == categoryName(c))
                enable(c);
        }
        pos = comma + 1;
    }
}

void
setSink(std::ostream *s)
{
    sink() = s;
}

void
emit(Category category, const std::string &message)
{
    std::ostream &out = sink() ? *sink() : std::cerr;
    out << '[' << categoryName(category) << "] " << message << '\n';
}

} // namespace ztx::trace
