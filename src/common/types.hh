/**
 * @file
 * Fundamental scalar types shared by every zTX module.
 *
 * The simulator follows gem5 conventions: addresses and cycle counts
 * are 64-bit unsigned integers with dedicated type aliases so that
 * interfaces document what kind of quantity they take.
 */

#ifndef ZTX_COMMON_TYPES_HH
#define ZTX_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace ztx {

/** Byte address in the simulated 64-bit physical address space. */
using Addr = std::uint64_t;

/** Simulated time, measured in CPU core cycles. */
using Cycles = std::uint64_t;

/** Index of a simulated CPU within the machine (0-based). */
using CpuId = std::uint32_t;

/** Sentinel for "no CPU" (e.g., a line with no exclusive owner). */
inline constexpr CpuId invalidCpu = ~CpuId(0);

/** Cache-line size of the simulated hierarchy (zEC12: 256 bytes). */
inline constexpr std::uint64_t lineSizeBytes = 256;

/** log2 of the line size, for address slicing. */
inline constexpr unsigned lineSizeLog2 = 8;

static_assert((std::uint64_t(1) << lineSizeLog2) == lineSizeBytes);

/** Return the line-aligned base address containing @p addr. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~(lineSizeBytes - 1);
}

/** Return the byte offset of @p addr within its cache line. */
constexpr std::uint64_t
lineOffset(Addr addr)
{
    return addr & (lineSizeBytes - 1);
}

/** Octoword (32-byte unit) base address; constrained TX data units. */
inline constexpr std::uint64_t octowordBytes = 32;

/** Return the octoword-aligned base address containing @p addr. */
constexpr Addr
octowordAlign(Addr addr)
{
    return addr & ~(octowordBytes - 1);
}

} // namespace ztx

#endif // ZTX_COMMON_TYPES_HH
