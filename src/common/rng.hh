/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The whole simulator is deterministic for a given seed; every
 * stochastic component (workload variable picking, PPA delays,
 * Transaction Diagnostic Control random aborts, millicode backoff)
 * draws from its own Rng instance seeded from the machine seed, so
 * component behaviour is reproducible and independent.
 *
 * The generator is xoshiro256**, seeded via SplitMix64 as its authors
 * recommend; both are public-domain algorithms.
 */

#ifndef ZTX_COMMON_RNG_HH
#define ZTX_COMMON_RNG_HH

#include <cstdint>

namespace ztx {

/** Small, fast, deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct with a 64-bit seed; any value is acceptable. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Uniform integer in [0, bound), bias-free for bound > 0.
     * @param bound Exclusive upper bound; must be non-zero.
     */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p);

  private:
    std::uint64_t state_[4];
};

} // namespace ztx

#endif // ZTX_COMMON_RNG_HH
