#include "log.hh"

#include <cstdio>
#include <cstdlib>

namespace ztx {
namespace log_detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n",
                 msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n",
                 msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace log_detail
} // namespace ztx
