/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal simulator invariant was violated (a zTX bug);
 *            aborts the process.
 * fatal()  — the user asked for something impossible (bad config);
 *            exits with status 1.
 * warn()/inform() — non-fatal notices on stderr.
 *
 * All of them accept printf-style formatting via std::format-like
 * variadic helpers kept deliberately simple (string + values through
 * an ostringstream) so the library has no formatting dependencies.
 */

#ifndef ZTX_COMMON_LOG_HH
#define ZTX_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace ztx {

/** Implementation helpers; not part of the public API. */
namespace log_detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate all arguments into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace log_detail

} // namespace ztx

/** Abort the process: an internal simulator invariant failed. */
#define ztx_panic(...) \
    ::ztx::log_detail::panicImpl(__FILE__, __LINE__, \
                                 ::ztx::log_detail::concat(__VA_ARGS__))

/** Exit(1): simulation cannot continue due to a user/config error. */
#define ztx_fatal(...) \
    ::ztx::log_detail::fatalImpl(__FILE__, __LINE__, \
                                 ::ztx::log_detail::concat(__VA_ARGS__))

/** Print a warning to stderr and continue. */
#define ztx_warn(...) \
    ::ztx::log_detail::warnImpl(::ztx::log_detail::concat(__VA_ARGS__))

/** Print an informational message to stderr and continue. */
#define ztx_inform(...) \
    ::ztx::log_detail::informImpl(::ztx::log_detail::concat(__VA_ARGS__))

#endif // ZTX_COMMON_LOG_HH
