/**
 * @file
 * gem5-style categorized tracing.
 *
 * Components emit one-line events through ztx_trace(category, ...);
 * nothing is formatted unless the category is enabled, so tracing is
 * free in benchmark runs. The sink defaults to stderr and can be
 * redirected (tests capture into a stringstream). Categories can
 * also be enabled from the ZTX_TRACE environment variable as a
 * comma-separated list (e.g. ZTX_TRACE=tx,xi).
 */

#ifndef ZTX_COMMON_TRACE_HH
#define ZTX_COMMON_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "common/log.hh"

namespace ztx::trace {

/** Trace categories (bit flags). */
enum class Category : std::uint32_t
{
    Tx = 1u << 0,        ///< TBEGIN/TEND/abort events
    Xi = 1u << 1,        ///< cross interrogates and rejections
    Cache = 1u << 2,     ///< fills, evictions, LRU extension
    Millicode = 1u << 3, ///< abort subroutine, PPA, escalation
    Io = 1u << 4,        ///< channel subsystem
    Exec = 1u << 5,      ///< per-instruction execution
};

/** Enable @p category. */
void enable(Category category);

/** Disable @p category. */
void disable(Category category);

/** Disable everything (test isolation). */
void disableAll();

/** True if @p category is enabled. */
bool enabled(Category category);

/** Parse "tx,xi,cache,millicode,io,exec" and enable those. */
void enableFromString(const std::string &spec);

/** Redirect output (nullptr restores stderr). */
void setSink(std::ostream *sink);

/** Short name of @p category. */
const char *categoryName(Category category);

/** Implementation detail of ztx_trace. */
void emit(Category category, const std::string &message);

} // namespace ztx::trace

/**
 * Emit a trace line in @p cat; arguments are streamed only when the
 * category is enabled.
 */
#define ztx_trace(cat, ...) \
    do { \
        if (::ztx::trace::enabled(cat)) { \
            ::ztx::trace::emit( \
                cat, ::ztx::log_detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

#endif // ZTX_COMMON_TRACE_HH
