/**
 * @file
 * The gathering store cache (paper §III.D).
 *
 * A circular queue of 64 entries, each holding 128 bytes with
 * byte-precise valid bits, sitting between the store-through L1/L2
 * and the L3. It gathers neighbouring stores to reduce L3 store
 * bandwidth and doubles as the transactional store buffer:
 *
 *  - at a new outermost TBEGIN all existing entries are *closed*
 *    (no further gathering) and drained;
 *  - transactional stores allocate/gather into transactional
 *    entries whose writeback is blocked until the transaction ends;
 *  - allocation failure with the cache full of current-transaction
 *    entries is the store-footprint overflow that aborts the TX;
 *  - each doubleword written by NTSTG is marked; on abort those
 *    doublewords survive and are committed anyway;
 *  - exclusive/demote XIs compare against active entries (the
 *    caller rejects the XI when a transactional entry matches).
 *
 * Functionally, zTX commits store-cache data to MainMemory when
 * entries drain (non-transactional) or at transaction end
 * (transactional); see DESIGN.md on the functional-vs-timing split.
 *
 * The per-access queries (overlay on every load, findOpen on every
 * store, hasTransactionalLine/hasAnyLine on every incoming XI) run
 * against a block index instead of scanning the entries: a small
 * open-addressed map from 128-byte block address to a chain of live
 * entries (kept in entry-array order, so lookups return exactly
 * what the historical scan returned), live/transactional occupancy
 * bitmaps, and a line-granular occupancy summary (per-bucket
 * counts + a 64-bit signature over hashed line addresses) that
 * rejects non-intersecting line queries with a single AND. See
 * DESIGN.md §5b "per-access hot path".
 */

#ifndef ZTX_CORE_STORE_CACHE_HH
#define ZTX_CORE_STORE_CACHE_HH

#include <array>
#include <bitset>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ztx::mem {
class MainMemory;
} // namespace ztx::mem

namespace ztx::core {

/** Bytes per store-cache entry (half a 256-byte cache line). */
inline constexpr std::uint64_t storeCacheBlockBytes = 128;

/** Base address of the 128-byte block containing @p addr. */
constexpr Addr
storeCacheBlockAlign(Addr addr)
{
    return addr & ~(storeCacheBlockBytes - 1);
}

/** The gathering store cache of one CPU. */
class GatheringStoreCache
{
  public:
    /**
     * @param num_entries Capacity (zEC12: 64).
     * @param name Stats prefix.
     */
    explicit GatheringStoreCache(unsigned num_entries = 64,
                                 const std::string &name = "stc");

    /**
     * Record a store of @p len bytes at @p addr (big-endian image in
     * @p bytes). Gathers into an open entry of the same block and
     * same transactional class, else allocates; the oldest drained
     * non-transactional entry is evicted to @p memory when full.
     *
     * @return false on store-footprint overflow: allocation was
     *         required but every entry holds current-transaction
     *         data. The caller must abort the transaction.
     */
    bool store(Addr addr, const std::uint8_t *bytes, unsigned len,
               bool transactional, bool ntstg,
               mem::MainMemory &memory);

    /**
     * Overlay this CPU's buffered store data onto @p buf, a
     * big-endian byte image of [addr, addr+len). Older entries are
     * applied first so newer stores win.
     */
    void overlay(Addr addr, unsigned len, std::uint8_t *buf) const;

    /**
     * Close every entry to further gathering and drain the
     * non-transactional ones (new outermost TBEGIN).
     */
    void closeAllEntries(mem::MainMemory &memory);

    /**
     * Transaction committed: write all transactional bytes to
     * @p memory and turn the entries into normal (still-open)
     * entries so post-transaction stores keep gathering.
     */
    void commitTransaction(mem::MainMemory &memory);

    /**
     * Transaction aborted: discard transactional entries, except
     * that NTSTG-marked doublewords are committed to @p memory.
     */
    void abortTransaction(mem::MainMemory &memory);

    /** True if any transactional entry intersects @p line. */
    bool hasTransactionalLine(Addr line) const;

    /** True if any live entry intersects @p line. */
    bool hasAnyLine(Addr line) const;

    /** Drain (write back and free) non-TX entries touching @p line. */
    void drainLine(Addr line, mem::MainMemory &memory);

    /** Drain every non-transactional entry. */
    void drainAll(mem::MainMemory &memory);

    /** Number of live entries. */
    unsigned liveEntries() const { return live_; }

    /** Number of live transactional entries. */
    unsigned liveTransactionalEntries() const { return liveTx_; }

    /** Capacity. */
    unsigned capacity() const { return unsigned(entries_.size()); }

    /** Stats group (gathers/allocations/overflows/NTSTG overlap). */
    StatGroup &stats() { return stats_; }

    /**
     * Verify the block index, occupancy bitmaps, and line summary
     * against a ground-truth walk of the entries.
     * @return Empty string when consistent, else a description of
     *         the first violation (chaos-oracle hook).
     */
    std::string indexCheck() const;

  private:
    struct Entry
    {
        bool live = false;
        bool transactional = false;
        bool closed = false;
        Addr block = 0;
        std::uint64_t seq = 0;
        std::array<std::uint8_t, storeCacheBlockBytes> data{};
        std::bitset<storeCacheBlockBytes> valid;
        /** Per-doubleword NTSTG mark (16 doublewords per block). */
        std::bitset<storeCacheBlockBytes / 8> ntstg;
    };

    /** Chain terminator / empty-map-slot marker. */
    static constexpr std::uint16_t npos = 0xFFFF;

    /** One open-addressed map slot: block -> live-entry chain. */
    struct MapSlot
    {
        Addr block = 0;
        std::uint16_t head = npos;
    };

    Entry *findOpen(Addr block, bool transactional);
    Entry *allocate(mem::MainMemory &memory);
    void writeBack(Entry &entry, mem::MainMemory &memory) const;
    void storeBlockPiece(Entry &entry, Addr addr,
                         const std::uint8_t *bytes, unsigned len,
                         bool ntstg);

    /** @name Block index maintenance @{ */
    std::size_t mapHome(Addr block) const;
    /** Map slot holding @p block's chain; npos64 when absent. */
    std::size_t mapFind(Addr block) const;
    /** Backward-shift deletion of map slot @p i. */
    void mapErase(std::size_t i);
    /** Link entry @p idx (just made live) into the index. */
    void indexInsert(unsigned idx);
    /** Unlink entry @p idx (about to be freed) from the index. */
    void indexRemove(unsigned idx);
    /** Entry @p idx changed transactional class (commit). */
    void indexSetNonTx(unsigned idx);
    /** @} */

    /** Line-summary bucket of @p addr (any address on the line). */
    static unsigned
    lineBucket(Addr addr)
    {
        return unsigned(addr >> lineSizeLog2) & 63u;
    }

    std::vector<Entry> entries_;
    std::uint64_t seq_ = 0;

    /** @name Block index (see file comment) @{ */
    std::vector<MapSlot> map_;
    std::size_t mapMask_ = 0;
    /** Per-entry chain link, entry-array order within a chain. */
    std::vector<std::uint16_t> next_;
    /** Occupancy bitmaps, bit i = entries_[i]. */
    std::vector<std::uint64_t> liveMask_;
    std::vector<std::uint64_t> txMask_;
    unsigned live_ = 0;
    unsigned liveTx_ = 0;
    /** Line-granular summary: live entries per hashed line bucket. */
    std::array<std::uint16_t, 64> lineBucketLive_{};
    std::array<std::uint16_t, 64> lineBucketTx_{};
    /** Signature: bit b set iff lineBucket*_[b] > 0. */
    std::uint64_t lineSigLive_ = 0;
    std::uint64_t lineSigTx_ = 0;
    /** @} */

    StatGroup stats_;
};

} // namespace ztx::core

#endif // ZTX_CORE_STORE_CACHE_HH
