/**
 * @file
 * Transactional-memory implementation parameters and the environment
 * interface the CPU model uses to reach machine-level services.
 *
 * Cycle costs marked [cal] are calibration constants (not stated in
 * the paper); their choice and sensitivity are discussed in
 * EXPERIMENTS.md.
 */

#ifndef ZTX_CORE_CONFIG_HH
#define ZTX_CORE_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace ztx::core {

/** TX facility and cost-model configuration of one CPU. */
struct TmConfig
{
    /** Architected maximum transaction nesting depth. */
    unsigned maxNestingDepth = 16;

    /** Gathering store cache entries (zEC12: 64 x 128 bytes). */
    unsigned storeCacheEntries = 64;

    /**
     * XI-reject hang avoidance: abort the transaction after this
     * many rejects issued while stalled on a rejected access of our
     * own (the deadlock-cycle signature). Low values resolve
     * hold-and-wait deadlocks quickly; per-CPU jitter breaks
     * symmetric cycles.
     */
    unsigned xiRejectAbortThreshold = 5;

    /** @name Cycle costs @{ */
    Cycles tbeginBaseCost = 6;       ///< [cal] TBEGIN overhead
    Cycles tbeginPerPairCost = 1;    ///< [cal] per saved GR pair
    Cycles tendCost = 4;             ///< [cal] outermost TEND
    Cycles casExtraCost = 11;        ///< [cal] CS serialization
    /**
     * [cal] Charge for an L1-hit storage access. The L1 use latency
     * is 4 cycles, but the zEC12 pipeline hides most of it for the
     * straight-line sequences the workloads run; charging the full
     * latency would overstate simple-instruction path lengths.
     */
    Cycles l1HitCharge = 2;
    /**
     * [cal] Superscalar width approximation: this many consecutive
     * simple (1-cycle) instructions complete per cycle, modelling
     * the 3-per-cycle decode of the zEC12 core.
     */
    unsigned dispatchWidth = 3;
    Cycles abortMillicodeCost = 140; ///< [cal] abort subroutine
    Cycles tdbStoreCost = 60;        ///< [cal] TDB formatting/store
    Cycles osInterruptCost = 800;    ///< [cal] OS round trip
    /** @} */

    /** @name PPA (Perform Processor Assist) backoff @{ */
    Cycles ppaBaseDelay = 24;   ///< [cal] delay scale
    unsigned ppaMaxShift = 6;   ///< cap on exponential growth
    /** @} */

    /** @name Constrained-transaction millicode escalation @{ */
    /** Aborts before random exponential delays start. */
    unsigned constrainedDelayThreshold = 1;
    Cycles constrainedDelayBase = 40; ///< [cal] delay scale
    unsigned constrainedDelayMaxShift = 2;
    /** Aborts before the last-resort broadcast-stop (solo mode). */
    unsigned constrainedSoloThreshold = 2;
    /** Constrained aborts before speculation is reduced. */
    unsigned constrainedSpeculationThreshold = 2;
    /** @} */

    /**
     * Speculative over-marking (paper §III.C): the tx-read bit is
     * set at load *execution*, so wrong-path/prefetch loads can mark
     * lines the transaction never architecturally uses. Modelled as
     * a per-load probability of additionally fetching and marking
     * the sequentially next line. Millicode's constrained-retry
     * escalation "reduc[es] the amount of speculative execution" by
     * suppressing it after repeated aborts. Default 0 (a core
     * without wrong-path pollution); the over-marking ablation
     * turns it on.
     */
    double speculativeOvermarkProb = 0.0;

    /** Enable the L1 LRU-extension scheme (paper §III.C). */
    bool lruExtensionEnabled = true;

    /** Enable stiff-arming (XI rejection) for conflicting XIs. */
    bool stiffArmEnabled = true;
};

/**
 * Machine services a CPU can call into: the global clock and the
 * millicode "broadcast to other CPUs to stop all conflicting work"
 * last resort for constrained transactions (paper §III.E).
 */
class CpuEnv
{
  public:
    virtual ~CpuEnv() = default;

    /** Current global cycle. */
    virtual Cycles now() const = 0;

    /**
     * Ask the machine to stop scheduling every other CPU until
     * releaseSolo() — millicode's guarantee of constrained-TX
     * success. Machines serialize competing requests.
     */
    virtual void requestSolo(CpuId cpu) = 0;

    /** Resume normal scheduling. */
    virtual void releaseSolo(CpuId cpu) = 0;

    /** CPU currently holding solo mode, or invalidCpu. */
    virtual CpuId soloHolder() const = 0;

    /**
     * Forward-progress tick: the CPU reports one unit of progress
     * (transaction commit, non-TX region close, halt). Environments
     * with a watchdog accumulate these into a monotonic counter so
     * the per-step O(numCpus) progress sum is unnecessary. Default
     * is a no-op for environments without a watchdog.
     */
    virtual void noteProgress(CpuId cpu) { (void)cpu; }
};

} // namespace ztx::core

#endif // ZTX_CORE_CONFIG_HH
