#include "store_cache.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"
#include "common/prof.hh"
#include "mem/main_memory.hh"

namespace ztx::core {

namespace {

/** npos for map-slot indices (chains use the 16-bit npos). */
constexpr std::size_t noSlot = ~std::size_t(0);

} // namespace

GatheringStoreCache::GatheringStoreCache(unsigned num_entries,
                                         const std::string &name)
    : entries_(num_entries), stats_(name)
{
    if (num_entries == 0)
        ztx_fatal("store cache needs at least one entry");
    if (num_entries >= npos)
        ztx_fatal("store cache capacity exceeds the index width");
    const std::size_t map_size =
        std::bit_ceil(std::size_t(std::max(64u, num_entries * 4u)));
    map_.resize(map_size);
    mapMask_ = map_size - 1;
    next_.assign(num_entries, npos);
    const std::size_t words = (num_entries + 63) / 64;
    liveMask_.assign(words, 0);
    txMask_.assign(words, 0);
}

std::size_t
GatheringStoreCache::mapHome(Addr block) const
{
    return std::size_t(
               (std::uint64_t(block >> 7) * 0x9E3779B97F4A7C15ull) >>
               32) &
           mapMask_;
}

std::size_t
GatheringStoreCache::mapFind(Addr block) const
{
    for (std::size_t i = mapHome(block);; i = (i + 1) & mapMask_) {
        if (map_[i].head == npos)
            return noSlot;
        if (map_[i].block == block)
            return i;
    }
}

void
GatheringStoreCache::mapErase(std::size_t i)
{
    // Backward-shift deletion keeps linear probing tombstone-free:
    // pull every displaced follower whose home slot is outside the
    // gap back over the hole.
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mapMask_;
         map_[j].head != npos; j = (j + 1) & mapMask_) {
        const std::size_t home = mapHome(map_[j].block);
        if (((j - home) & mapMask_) >= ((j - hole) & mapMask_)) {
            map_[hole] = map_[j];
            hole = j;
        }
    }
    map_[hole].head = npos;
}

void
GatheringStoreCache::indexInsert(unsigned idx)
{
    const Entry &e = entries_[idx];
    std::size_t slot = mapHome(e.block);
    while (map_[slot].head != npos && map_[slot].block != e.block)
        slot = (slot + 1) & mapMask_;
    if (map_[slot].head == npos) {
        map_[slot].block = e.block;
        map_[slot].head = npos;
    }
    // Chains stay in entry-array order so index lookups return
    // exactly what a linear scan of entries_ would have returned.
    std::uint16_t *link = &map_[slot].head;
    while (*link != npos && *link < idx)
        link = &next_[*link];
    next_[idx] = *link;
    *link = std::uint16_t(idx);

    liveMask_[idx / 64] |= std::uint64_t(1) << (idx % 64);
    ++live_;
    const unsigned bucket = lineBucket(e.block);
    if (lineBucketLive_[bucket]++ == 0)
        lineSigLive_ |= std::uint64_t(1) << bucket;
    if (e.transactional) {
        txMask_[idx / 64] |= std::uint64_t(1) << (idx % 64);
        ++liveTx_;
        if (lineBucketTx_[bucket]++ == 0)
            lineSigTx_ |= std::uint64_t(1) << bucket;
    }
}

void
GatheringStoreCache::indexRemove(unsigned idx)
{
    const Entry &e = entries_[idx];
    const std::size_t slot = mapFind(e.block);
    if (slot == noSlot)
        ztx_panic("store-cache index: live entry's block not mapped");
    std::uint16_t *link = &map_[slot].head;
    while (*link != npos && *link != idx)
        link = &next_[*link];
    if (*link != idx)
        ztx_panic("store-cache index: live entry not on its chain");
    *link = next_[idx];
    next_[idx] = npos;
    if (map_[slot].head == npos)
        mapErase(slot);

    liveMask_[idx / 64] &= ~(std::uint64_t(1) << (idx % 64));
    --live_;
    const unsigned bucket = lineBucket(e.block);
    if (--lineBucketLive_[bucket] == 0)
        lineSigLive_ &= ~(std::uint64_t(1) << bucket);
    if (e.transactional) {
        txMask_[idx / 64] &= ~(std::uint64_t(1) << (idx % 64));
        --liveTx_;
        if (--lineBucketTx_[bucket] == 0)
            lineSigTx_ &= ~(std::uint64_t(1) << bucket);
    }
}

void
GatheringStoreCache::indexSetNonTx(unsigned idx)
{
    txMask_[idx / 64] &= ~(std::uint64_t(1) << (idx % 64));
    --liveTx_;
    const unsigned bucket = lineBucket(entries_[idx].block);
    if (--lineBucketTx_[bucket] == 0)
        lineSigTx_ &= ~(std::uint64_t(1) << bucket);
}

GatheringStoreCache::Entry *
GatheringStoreCache::findOpen(Addr block, bool transactional)
{
    const std::size_t slot = mapFind(block);
    if (slot == noSlot)
        return nullptr;
    for (std::uint16_t i = map_[slot].head; i != npos;
         i = next_[i]) {
        Entry &e = entries_[i];
        if (!e.closed && e.transactional == transactional)
            return &e;
    }
    return nullptr;
}

GatheringStoreCache::Entry *
GatheringStoreCache::allocate(mem::MainMemory &memory)
{
    if (live_ < capacity()) {
        // First free slot in entry-array order.
        for (std::size_t w = 0; w < liveMask_.size(); ++w) {
            std::uint64_t free_bits = ~liveMask_[w];
            const std::size_t base = w * 64;
            const std::size_t tail = capacity() - base;
            if (tail < 64)
                free_bits &= (std::uint64_t(1) << tail) - 1;
            if (free_bits != 0)
                return &entries_[base +
                                 unsigned(std::countr_zero(free_bits))];
        }
        ztx_panic("store-cache occupancy bitmap disagrees with live "
                  "count");
    }
    // Evict the oldest non-transactional entry; transactional
    // entries cannot be written back before the transaction ends.
    if (liveTx_ == live_)
        return nullptr; // overflow: all entries are transactional
    Entry *oldest = nullptr;
    unsigned oldest_idx = 0;
    for (std::size_t w = 0; w < liveMask_.size(); ++w) {
        std::uint64_t bits = liveMask_[w] & ~txMask_[w];
        while (bits != 0) {
            const unsigned idx =
                unsigned(w * 64) + unsigned(std::countr_zero(bits));
            bits &= bits - 1;
            Entry &e = entries_[idx];
            if (!oldest || e.seq < oldest->seq) {
                oldest = &e;
                oldest_idx = idx;
            }
        }
    }
    writeBack(*oldest, memory);
    indexRemove(oldest_idx);
    oldest->live = false;
    stats_.counter("evictions").inc();
    return oldest;
}

void
GatheringStoreCache::writeBack(Entry &entry,
                               mem::MainMemory &memory) const
{
    for (std::uint64_t b = 0; b < storeCacheBlockBytes; ++b)
        if (entry.valid[b])
            memory.writeByte(entry.block + b, entry.data[b]);
}

void
GatheringStoreCache::storeBlockPiece(Entry &entry, Addr addr,
                                     const std::uint8_t *bytes,
                                     unsigned len, bool ntstg)
{
    const std::uint64_t off = addr - entry.block;
    for (unsigned i = 0; i < len; ++i) {
        const std::uint64_t b = off + i;
        const std::uint64_t dw = b / 8;
        if (entry.valid[b] && entry.ntstg[dw] != ntstg) {
            // The architecture requires NTSTG targets not to overlap
            // other stores of the transaction; the outcome would be
            // unpredictable on real hardware. Record it.
            stats_.counter("ntstg_overlap").inc();
        }
        entry.data[b] = bytes[i];
        entry.valid.set(b);
        if (ntstg)
            entry.ntstg.set(dw);
    }
}

bool
GatheringStoreCache::store(Addr addr, const std::uint8_t *bytes,
                           unsigned len, bool transactional,
                           bool ntstg, mem::MainMemory &memory)
{
    ZTX_PROF_SCOPE("stc.store");
    while (len > 0) {
        const Addr block = storeCacheBlockAlign(addr);
        const unsigned in_block = unsigned(
            std::min<std::uint64_t>(len,
                                    block + storeCacheBlockBytes -
                                        addr));
        Entry *entry = findOpen(block, transactional);
        if (entry) {
            stats_.counter("gathers").inc();
        } else {
            entry = allocate(memory);
            if (!entry) {
                stats_.counter("overflows").inc();
                return false;
            }
            entry->live = true;
            entry->transactional = transactional;
            entry->closed = false;
            entry->block = block;
            entry->seq = ++seq_;
            entry->valid.reset();
            entry->ntstg.reset();
            indexInsert(unsigned(entry - entries_.data()));
            stats_.counter("allocations").inc();
        }
        storeBlockPiece(*entry, addr, bytes, in_block, ntstg);
        addr += in_block;
        bytes += in_block;
        len -= in_block;
    }
    return true;
}

void
GatheringStoreCache::overlay(Addr addr, unsigned len,
                             std::uint8_t *buf) const
{
    ZTX_PROF_SCOPE("stc.overlay");
    if (live_ == 0 || len == 0)
        return;
    // Collect intersecting live entries (via the block index) and
    // apply them oldest first so newer stores win.
    std::vector<const Entry *> hits;
    const Addr last_block = storeCacheBlockAlign(addr + len - 1);
    for (Addr block = storeCacheBlockAlign(addr);;
         block += storeCacheBlockBytes) {
        const std::size_t slot = mapFind(block);
        if (slot != noSlot)
            for (std::uint16_t i = map_[slot].head; i != npos;
                 i = next_[i])
                hits.push_back(&entries_[i]);
        if (block == last_block)
            break;
    }
    std::sort(hits.begin(), hits.end(),
              [](const Entry *a, const Entry *b) {
                  return a->seq < b->seq;
              });
    for (const Entry *e : hits) {
        const Addr lo = std::max(addr, e->block);
        const Addr hi =
            std::min(addr + len, e->block + storeCacheBlockBytes);
        for (Addr b = lo; b < hi; ++b) {
            const std::uint64_t in_entry = b - e->block;
            if (e->valid[in_entry])
                buf[b - addr] = e->data[in_entry];
        }
    }
}

void
GatheringStoreCache::closeAllEntries(mem::MainMemory &memory)
{
    if (live_ == 0)
        return;
    std::vector<unsigned> idxs;
    idxs.reserve(live_);
    for (std::size_t w = 0; w < liveMask_.size(); ++w) {
        std::uint64_t bits = liveMask_[w];
        while (bits != 0) {
            idxs.push_back(unsigned(w * 64) +
                           unsigned(std::countr_zero(bits)));
            bits &= bits - 1;
        }
    }
    for (const unsigned idx : idxs) {
        Entry &e = entries_[idx];
        if (e.transactional)
            ztx_panic("TBEGIN with live transactional store-cache "
                      "entries");
        // Close and start eviction; functionally the data reaches
        // memory immediately.
        writeBack(e, memory);
        indexRemove(idx);
        e.live = false;
    }
}

void
GatheringStoreCache::commitTransaction(mem::MainMemory &memory)
{
    if (liveTx_ == 0)
        return;
    std::vector<unsigned> idxs;
    idxs.reserve(liveTx_);
    for (std::size_t w = 0; w < txMask_.size(); ++w) {
        std::uint64_t bits = txMask_[w];
        while (bits != 0) {
            idxs.push_back(unsigned(w * 64) +
                           unsigned(std::countr_zero(bits)));
            bits &= bits - 1;
        }
    }
    for (const unsigned idx : idxs) {
        Entry &e = entries_[idx];
        writeBack(e, memory);
        // Become a normal entry; subsequent post-transaction stores
        // may keep gathering into it until the next TBEGIN closes it.
        e.transactional = false;
        e.ntstg.reset();
        indexSetNonTx(idx);
    }
}

void
GatheringStoreCache::abortTransaction(mem::MainMemory &memory)
{
    if (liveTx_ == 0)
        return;
    std::vector<unsigned> idxs;
    idxs.reserve(liveTx_);
    for (std::size_t w = 0; w < txMask_.size(); ++w) {
        std::uint64_t bits = txMask_[w];
        while (bits != 0) {
            idxs.push_back(unsigned(w * 64) +
                           unsigned(std::countr_zero(bits)));
            bits &= bits - 1;
        }
    }
    for (const unsigned idx : idxs) {
        Entry &e = entries_[idx];
        // NTSTG doublewords are committed even on abort.
        for (std::uint64_t dw = 0; dw < storeCacheBlockBytes / 8;
             ++dw) {
            if (!e.ntstg[dw])
                continue;
            for (std::uint64_t b = dw * 8; b < dw * 8 + 8; ++b)
                if (e.valid[b])
                    memory.writeByte(e.block + b, e.data[b]);
        }
        indexRemove(idx);
        e.live = false;
    }
}

bool
GatheringStoreCache::hasTransactionalLine(Addr line) const
{
    if ((lineSigTx_ & (std::uint64_t(1) << lineBucket(line))) == 0)
        return false;
    if (lineAlign(line) != line)
        return false;
    for (Addr block = line; block < line + lineSizeBytes;
         block += storeCacheBlockBytes) {
        const std::size_t slot = mapFind(block);
        if (slot == noSlot)
            continue;
        for (std::uint16_t i = map_[slot].head; i != npos;
             i = next_[i])
            if (entries_[i].transactional)
                return true;
    }
    return false;
}

bool
GatheringStoreCache::hasAnyLine(Addr line) const
{
    if ((lineSigLive_ & (std::uint64_t(1) << lineBucket(line))) == 0)
        return false;
    if (lineAlign(line) != line)
        return false;
    for (Addr block = line; block < line + lineSizeBytes;
         block += storeCacheBlockBytes)
        if (mapFind(block) != noSlot)
            return true;
    return false;
}

void
GatheringStoreCache::drainLine(Addr line, mem::MainMemory &memory)
{
    if ((lineSigLive_ & (std::uint64_t(1) << lineBucket(line))) == 0)
        return;
    if (lineAlign(line) != line)
        return;
    std::vector<unsigned> idxs;
    for (Addr block = line; block < line + lineSizeBytes;
         block += storeCacheBlockBytes) {
        const std::size_t slot = mapFind(block);
        if (slot == noSlot)
            continue;
        for (std::uint16_t i = map_[slot].head; i != npos;
             i = next_[i])
            if (!entries_[i].transactional)
                idxs.push_back(i);
    }
    std::sort(idxs.begin(), idxs.end());
    for (const unsigned idx : idxs) {
        Entry &e = entries_[idx];
        writeBack(e, memory);
        indexRemove(idx);
        e.live = false;
    }
}

void
GatheringStoreCache::drainAll(mem::MainMemory &memory)
{
    if (live_ == liveTx_)
        return; // nothing non-transactional to drain
    std::vector<unsigned> idxs;
    idxs.reserve(live_ - liveTx_);
    for (std::size_t w = 0; w < liveMask_.size(); ++w) {
        std::uint64_t bits = liveMask_[w] & ~txMask_[w];
        while (bits != 0) {
            idxs.push_back(unsigned(w * 64) +
                           unsigned(std::countr_zero(bits)));
            bits &= bits - 1;
        }
    }
    for (const unsigned idx : idxs) {
        Entry &e = entries_[idx];
        writeBack(e, memory);
        indexRemove(idx);
        e.live = false;
    }
}

std::string
GatheringStoreCache::indexCheck() const
{
    unsigned live = 0;
    unsigned live_tx = 0;
    std::array<std::uint16_t, 64> bucket_live{};
    std::array<std::uint16_t, 64> bucket_tx{};
    for (unsigned i = 0; i < capacity(); ++i) {
        const Entry &e = entries_[i];
        const std::uint64_t bit = std::uint64_t(1) << (i % 64);
        const bool in_live = (liveMask_[i / 64] & bit) != 0;
        const bool in_tx = (txMask_[i / 64] & bit) != 0;
        if (in_live != e.live)
            return "entry " + std::to_string(i) +
                   ": live flag disagrees with occupancy bitmap";
        if (in_tx != (e.live && e.transactional))
            return "entry " + std::to_string(i) +
                   ": transactional flag disagrees with tx bitmap";
        if (!e.live)
            continue;
        ++live;
        live_tx += e.transactional ? 1 : 0;
        const unsigned bucket = lineBucket(e.block);
        ++bucket_live[bucket];
        bucket_tx[bucket] += e.transactional ? 1 : 0;
        // The entry must be reachable through its block's chain.
        const std::size_t slot = mapFind(e.block);
        if (slot == noSlot)
            return "entry " + std::to_string(i) +
                   ": block missing from the index map";
        bool reachable = false;
        std::uint16_t prev = npos;
        for (std::uint16_t j = map_[slot].head; j != npos;
             j = next_[j]) {
            if (prev != npos && j <= prev)
                return "block chain out of entry-array order";
            if (entries_[j].block != map_[slot].block ||
                !entries_[j].live)
                return "block chain links a dead or foreign entry";
            if (j == i)
                reachable = true;
            prev = j;
        }
        if (!reachable)
            return "entry " + std::to_string(i) +
                   ": not reachable on its block chain";
    }
    if (live != live_)
        return "live count mismatch";
    if (live_tx != liveTx_)
        return "transactional live count mismatch";
    for (unsigned b = 0; b < 64; ++b) {
        if (bucket_live[b] != lineBucketLive_[b] ||
            bucket_tx[b] != lineBucketTx_[b])
            return "line-summary bucket count mismatch";
        const std::uint64_t bit = std::uint64_t(1) << b;
        if (((lineSigLive_ & bit) != 0) != (bucket_live[b] > 0) ||
            ((lineSigTx_ & bit) != 0) != (bucket_tx[b] > 0))
            return "line-summary signature disagrees with counts";
    }
    // Every occupied map slot must chain at least one live entry.
    for (std::size_t s = 0; s < map_.size(); ++s)
        if (map_[s].head != npos &&
            (!entries_[map_[s].head].live ||
             entries_[map_[s].head].block != map_[s].block))
            return "map slot heads a dead or foreign chain";
    return "";
}

} // namespace ztx::core
