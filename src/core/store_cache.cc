#include "store_cache.hh"

#include <algorithm>

#include "common/log.hh"
#include "mem/main_memory.hh"

namespace ztx::core {

GatheringStoreCache::GatheringStoreCache(unsigned num_entries,
                                         const std::string &name)
    : entries_(num_entries), stats_(name)
{
    if (num_entries == 0)
        ztx_fatal("store cache needs at least one entry");
}

GatheringStoreCache::Entry *
GatheringStoreCache::findOpen(Addr block, bool transactional)
{
    for (auto &e : entries_) {
        if (e.live && !e.closed && e.block == block &&
            e.transactional == transactional) {
            return &e;
        }
    }
    return nullptr;
}

GatheringStoreCache::Entry *
GatheringStoreCache::allocate(mem::MainMemory &memory)
{
    for (auto &e : entries_) {
        if (!e.live)
            return &e;
    }
    // Evict the oldest non-transactional entry; transactional
    // entries cannot be written back before the transaction ends.
    Entry *oldest = nullptr;
    for (auto &e : entries_) {
        if (!e.transactional && (!oldest || e.seq < oldest->seq))
            oldest = &e;
    }
    if (!oldest)
        return nullptr; // overflow: all entries are transactional
    writeBack(*oldest, memory);
    oldest->live = false;
    stats_.counter("evictions").inc();
    return oldest;
}

void
GatheringStoreCache::writeBack(Entry &entry,
                               mem::MainMemory &memory) const
{
    for (std::uint64_t b = 0; b < storeCacheBlockBytes; ++b)
        if (entry.valid[b])
            memory.writeByte(entry.block + b, entry.data[b]);
}

void
GatheringStoreCache::storeBlockPiece(Entry &entry, Addr addr,
                                     const std::uint8_t *bytes,
                                     unsigned len, bool ntstg)
{
    const std::uint64_t off = addr - entry.block;
    for (unsigned i = 0; i < len; ++i) {
        const std::uint64_t b = off + i;
        const std::uint64_t dw = b / 8;
        if (entry.valid[b] && entry.ntstg[dw] != ntstg) {
            // The architecture requires NTSTG targets not to overlap
            // other stores of the transaction; the outcome would be
            // unpredictable on real hardware. Record it.
            stats_.counter("ntstg_overlap").inc();
        }
        entry.data[b] = bytes[i];
        entry.valid.set(b);
        if (ntstg)
            entry.ntstg.set(dw);
    }
}

bool
GatheringStoreCache::store(Addr addr, const std::uint8_t *bytes,
                           unsigned len, bool transactional,
                           bool ntstg, mem::MainMemory &memory)
{
    while (len > 0) {
        const Addr block = storeCacheBlockAlign(addr);
        const unsigned in_block = unsigned(
            std::min<std::uint64_t>(len,
                                    block + storeCacheBlockBytes -
                                        addr));
        Entry *entry = findOpen(block, transactional);
        if (entry) {
            stats_.counter("gathers").inc();
        } else {
            entry = allocate(memory);
            if (!entry) {
                stats_.counter("overflows").inc();
                return false;
            }
            entry->live = true;
            entry->transactional = transactional;
            entry->closed = false;
            entry->block = block;
            entry->seq = ++seq_;
            entry->valid.reset();
            entry->ntstg.reset();
            stats_.counter("allocations").inc();
        }
        storeBlockPiece(*entry, addr, bytes, in_block, ntstg);
        addr += in_block;
        bytes += in_block;
        len -= in_block;
    }
    return true;
}

void
GatheringStoreCache::overlay(Addr addr, unsigned len,
                             std::uint8_t *buf) const
{
    // Collect intersecting live entries and apply them oldest first
    // so newer stores win.
    std::vector<const Entry *> hits;
    for (const auto &e : entries_) {
        if (e.live && e.block < addr + len &&
            addr < e.block + storeCacheBlockBytes) {
            hits.push_back(&e);
        }
    }
    std::sort(hits.begin(), hits.end(),
              [](const Entry *a, const Entry *b) {
                  return a->seq < b->seq;
              });
    for (const Entry *e : hits) {
        const Addr lo = std::max(addr, e->block);
        const Addr hi =
            std::min(addr + len, e->block + storeCacheBlockBytes);
        for (Addr b = lo; b < hi; ++b) {
            const std::uint64_t in_entry = b - e->block;
            if (e->valid[in_entry])
                buf[b - addr] = e->data[in_entry];
        }
    }
}

void
GatheringStoreCache::closeAllEntries(mem::MainMemory &memory)
{
    for (auto &e : entries_) {
        if (!e.live)
            continue;
        if (e.transactional)
            ztx_panic("TBEGIN with live transactional store-cache "
                      "entries");
        // Close and start eviction; functionally the data reaches
        // memory immediately.
        writeBack(e, memory);
        e.live = false;
    }
}

void
GatheringStoreCache::commitTransaction(mem::MainMemory &memory)
{
    for (auto &e : entries_) {
        if (!e.live || !e.transactional)
            continue;
        writeBack(e, memory);
        // Become a normal entry; subsequent post-transaction stores
        // may keep gathering into it until the next TBEGIN closes it.
        e.transactional = false;
        e.ntstg.reset();
    }
}

void
GatheringStoreCache::abortTransaction(mem::MainMemory &memory)
{
    for (auto &e : entries_) {
        if (!e.live || !e.transactional)
            continue;
        // NTSTG doublewords are committed even on abort.
        for (std::uint64_t dw = 0; dw < storeCacheBlockBytes / 8;
             ++dw) {
            if (!e.ntstg[dw])
                continue;
            for (std::uint64_t b = dw * 8; b < dw * 8 + 8; ++b)
                if (e.valid[b])
                    memory.writeByte(e.block + b, e.data[b]);
        }
        e.live = false;
    }
}

bool
GatheringStoreCache::hasTransactionalLine(Addr line) const
{
    for (const auto &e : entries_)
        if (e.live && e.transactional && lineAlign(e.block) == line)
            return true;
    return false;
}

bool
GatheringStoreCache::hasAnyLine(Addr line) const
{
    for (const auto &e : entries_)
        if (e.live && lineAlign(e.block) == line)
            return true;
    return false;
}

void
GatheringStoreCache::drainLine(Addr line, mem::MainMemory &memory)
{
    for (auto &e : entries_) {
        if (e.live && !e.transactional && lineAlign(e.block) == line) {
            writeBack(e, memory);
            e.live = false;
        }
    }
}

void
GatheringStoreCache::drainAll(mem::MainMemory &memory)
{
    for (auto &e : entries_) {
        if (e.live && !e.transactional) {
            writeBack(e, memory);
            e.live = false;
        }
    }
}

unsigned
GatheringStoreCache::liveEntries() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += e.live ? 1 : 0;
    return n;
}

unsigned
GatheringStoreCache::liveTransactionalEntries() const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        n += (e.live && e.transactional) ? 1 : 0;
    return n;
}

} // namespace ztx::core
