/**
 * @file
 * The zTX CPU model: an interpreter for the mini z-ISA with the
 * complete Transactional Execution facility of paper §II/§III.
 *
 * The CPU executes one instruction per step() against the shared
 * cache hierarchy, returning its cycle cost to the Machine
 * scheduler. It implements mem::CacheClient to evaluate incoming
 * cross interrogates: conflicting Demote/Exclusive XIs are rejected
 * ("stiff-armed") while the transaction hopes to finish, bounded by
 * the hang-avoidance reject counter; non-rejectable XIs that hit the
 * transactional footprint abort the transaction.
 *
 * Aborts are processed by the millicode engine (see
 * millicode/millicode.hh), matching the paper's firmware split.
 */

#ifndef ZTX_CORE_CPU_HH
#define ZTX_CORE_CPU_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "core/store_cache.hh"
#include "core/store_queue.hh"
#include "debug/os_model.hh"
#include "debug/page_table.hh"
#include "debug/per.hh"
#include "debug/tdc.hh"
#include "core/op_recorder.hh"
#include "isa/program.hh"
#include "isa/registers.hh"
#include "mem/hierarchy.hh"
#include "mem/main_memory.hh"
#include "tx/abort.hh"
#include "tx/constraints.hh"

namespace ztx::millicode {
class MillicodeEngine;
} // namespace ztx::millicode

namespace ztx::core {

/** Everything millicode needs to know about one abort. */
struct AbortContext
{
    tx::AbortReason reason = tx::AbortReason::Miscellaneous;
    /** TDB abort code; defaults to the reason's code. */
    std::uint64_t code = 0;
    /** Conflicting storage address, when known. */
    Addr conflictAddr = 0;
    bool conflictValid = false;
    /** Program-interruption condition behind the abort, if any. */
    tx::InterruptCode interruptCode = tx::InterruptCode::None;
    Addr interruptAddr = 0;
    /** True if the interruption is filtered (no OS involvement). */
    bool filtered = false;
};

/** One simulated CPU. */
class Cpu : public mem::CacheClient
{
  public:
    /**
     * @param id CPU number within the machine.
     * @param hier Shared cache hierarchy (registers itself as the
     *        XI client for @p id).
     * @param memory Functional backing store.
     * @param pages Shared page-present table.
     * @param os Stub operating system for interruptions.
     * @param env Machine services (clock, solo mode).
     * @param config TM parameters and cycle costs.
     * @param seed Seed of this CPU's private RNG.
     */
    Cpu(CpuId id, mem::Hierarchy &hier, mem::MainMemory &memory,
        debug::PageTable &pages, debug::OsModel &os, CpuEnv &env,
        const TmConfig &config, std::uint64_t seed);

    ~Cpu() override;

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /** Bind the instruction stream and reset the PSW to its entry. */
    void setProgram(const isa::Program *program);

    /**
     * Execute (or retry) one instruction.
     * @return Cycle cost of this step; 0 when halted.
     */
    Cycles step();

    /** True once HALT executed or the OS terminated the program. */
    bool halted() const { return halted_; }

    /** @name Architected state access @{ */
    std::uint64_t gr(unsigned r) const { return regs_.gr.at(r); }
    void setGr(unsigned r, std::uint64_t v) { regs_.gr.at(r) = v; }
    std::uint32_t ar(unsigned r) const { return regs_.ar.at(r); }
    void setAr(unsigned r, std::uint32_t v) { regs_.ar.at(r) = v; }
    std::uint64_t fpr(unsigned r) const { return regs_.fpr.at(r); }
    void setFpr(unsigned r, std::uint64_t v) { regs_.fpr.at(r) = v; }
    const isa::Psw &psw() const { return psw_; }
    void setIa(Addr ia) { psw_.ia = ia; }
    /** @} */

    /** @name Transactional state @{ */
    unsigned nestingDepth() const { return txDepth_; }
    bool inTx() const { return txDepth_ > 0; }
    bool inConstrainedTx() const { return inTx() && constrained_; }
    /** @} */

    /** @name Millicode escalation state (tests, diagnostics) @{ */
    unsigned constrainedAbortCount() const
    {
        return constrainedAbortCount_;
    }
    bool soloHeld() const { return soloHeld_; }
    bool speculationReduced() const { return speculationReduced_; }
    std::uint64_t lastAbortCode() const { return lastAbortCode_; }
    /** @} */

    /**
     * Forward-progress events retired so far: outermost transaction
     * commits, measured-region closes (MARKE), and the final HALT.
     * The machine watchdog declares livelock when the machine-wide
     * sum of these stops moving (see MachineConfig::watchdogCycles).
     */
    std::uint64_t progressEvents() const { return progressEvents_; }

    /**
     * Transaction aborts of any reason so far (plain counter for the
     * scenario engine's on-abort triggers; cheaper than a stats
     * lookup on the trigger-poll path).
     */
    std::uint64_t abortsTotal() const { return abortsTotal_; }

    /**
     * Fault injection: abort the current transaction for no
     * architectural reason (millicode must tolerate random aborts).
     * Processed as a transient diagnostic abort — CC2, normal
     * escalation-ladder accounting. No-op outside a transaction.
     * Call between steps, like deliverExternalInterrupt().
     */
    void injectSpuriousAbort();

    /**
     * Livelock-diagnosis snapshot (watchdog bundle): architected
     * position, transactional mode, escalation-ladder state, last
     * abort code, TDB address, and commit/abort totals by reason.
     */
    Json diagnosticJson() const;

    /** CPU id. */
    CpuId id() const { return id_; }

    /** @name Debug facilities @{ */
    debug::PerControls &perControls() { return per_; }
    debug::TdcControl &tdcControl() { return tdc_; }
    /** @} */

    /**
     * Deliver an asynchronous (external) interruption; aborts a
     * transaction in progress. Call between steps.
     */
    void deliverExternalInterrupt();

    /** Drain buffered non-transactional stores to memory. */
    void drainStores();

    /**
     * Read memory the way this CPU would (merging its own buffered
     * stores) without timing effects; for harness/test inspection.
     */
    std::uint64_t peekMem(Addr addr, unsigned size) const;

    /** @name Scheduler interface @{ */
    /** Extra stall (abort penalties, backoff) to apply, then clear. */
    Cycles consumePendingStall();
    /** Add stall cycles before this CPU's next step. */
    void addStall(Cycles cycles) { pendingStall_ += cycles; }
    /** @} */

    /** @name Sharded-scheduler interface @{ */
    /**
     * Restrict the next step()s to CPU-private work: any access
     * that would touch the fabric, another CPU, or the OS defers
     * (deferredStep() turns true, nothing is charged) instead of
     * executing. The sharded scheduler runs CPUs in this mode
     * during the parallel phase and re-steps deferred CPUs
     * serially at the quantum barrier.
     */
    void setLocalOnly(bool on) { localOnly_ = on; }

    /** True when the last step() deferred instead of executing. */
    bool deferredStep() const { return deferredStep_; }

    /**
     * Fetches the shard-local fast path resolved from the chip's L3
     * inside the parallel phase since the last call, then clear.
     * The shard folds these into sched.l3_local_hits.
     */
    std::uint64_t
    consumeShardL3Hits()
    {
        const std::uint64_t n = shardL3Hits_;
        shardL3Hits_ = 0;
        return n;
    }
    /** @} */

    /** @name Measurement (MARKB/MARKE pseudo-ops) @{ */
    const Distribution &regionCycles() const { return regionCycles_; }
    void resetMeasurement() { regionCycles_.reset(); }
    /** @} */

    /** @name Operation log (OPLOGB/OPLOGE pseudo-ops) @{ */
    /**
     * Attach (or detach, with nullptr) the sink the OPLOGB/OPLOGE
     * pseudo-ops report to. Without a recorder they are NOPs; with
     * one, recording is free in simulated cycles, so timing is
     * unchanged either way.
     */
    void setOpRecorder(OpRecorder *recorder)
    {
        opRecorder_ = recorder;
    }
    OpRecorder *opRecorder() const { return opRecorder_; }
    /** @} */

    /** Per-CPU stats ("cpuN.*"): commits, aborts by reason, ... */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** The gathering store cache, for index-consistency oracles. */
    const GatheringStoreCache &storeCache() const
    {
        return storeCache_;
    }

    /** @name mem::CacheClient @{ */
    mem::XiResponse incomingXi(const mem::XiContext &ctx) override;
    void l1Evicted(Addr line, std::uint8_t flags) override;
    /** @} */

    /** The TDB stored into the prefix area lives here, per CPU. */
    Addr prefixTdbAddr() const;

  private:
    friend class ztx::millicode::MillicodeEngine;

    /** Outcome of executing one instruction. */
    struct ExecResult
    {
        Cycles cost = 1;
        /** False when the access was rejected and must be retried. */
        bool completed = true;
    };

    ExecResult execute(const isa::Program::Slot &slot);
    ExecResult executeTxOp(const isa::Program::Slot &slot);

    /** Effective (ANDed/maxed over the nest) TBEGIN controls. */
    bool effAllowArMod() const;
    bool effAllowFprMod() const;
    std::uint8_t effPifc() const;

    Addr effectiveAddr(const isa::Instruction &inst) const;

    /**
     * Perform the cache/coherence side of a data access spanning
     * [addr, addr+size). Accumulates latency into @p cost.
     * @return false if rejected or the transaction aborted; the
     *         instruction must not complete.
     */
    bool accessLines(Addr addr, unsigned size, bool exclusive,
                     Cycles &cost);

    /** Functional read merging store cache and STQ over memory. */
    std::uint64_t readMerged(Addr addr, unsigned size) const;

    /**
     * Full load path (paging, constraints, coherence, merge).
     * @param exclusive Fetch with ownership (LGFO store intent).
     * @return The value, or nullopt if the step cannot complete.
     */
    std::optional<std::uint64_t> memLoad(Addr addr, unsigned size,
                                         Cycles &cost,
                                         bool exclusive = false);

    /** Full store path. @return false if the step cannot complete. */
    bool memStore(Addr addr, std::uint64_t value, unsigned size,
                  bool ntstg, Cycles &cost);

    /** Raise a program-exception condition at the current PSW. */
    void programException(tx::InterruptCode code, Addr addr,
                          bool instruction_fetch, Cycles &cost);

    /** Deliver an (unfiltered) interruption to the OS model. */
    void osInterrupt(tx::InterruptCode code, Addr addr, bool from_tx,
                     bool from_constrained, Cycles &cost);

    /** Route an abort through millicode. */
    void abortTransaction(const AbortContext &ctx);

    /** Begin a transaction (shared TBEGIN/TBEGINC tail). */
    ExecResult beginTransaction(const isa::Program::Slot &slot,
                                bool constrained);

    /** Commit path of an outermost TEND. */
    ExecResult endTransaction();

    /** PER store-event check; may abort/interrupt. */
    bool perStoreCheck(Addr addr, unsigned size, Cycles &cost);

    /** Handle a constrained-TX rule violation. */
    void constraintViolation(tx::ConstraintViolationKind kind,
                             Cycles &cost);

    /**
     * An access touched a poisoned line (RAS model): abort the
     * transaction (transactional access) or take a machine check
     * with scrub/restart recovery (non-transactional access).
     * Defers under local-only mode — recovery needs the OS.
     * @return Always false: the triggering step must not complete.
     */
    bool handlePoisonedAccess(Addr line, Cycles &cost);

    /**
     * Kill-and-restart recovery for unrecoverable data loss: reset
     * the program to its entry point (keeping the GRs the harness
     * pre-seeded) and resume as a fresh workload item.
     */
    void restartWorkload();

    CpuId id_;
    mem::Hierarchy &hier_;
    mem::MainMemory &memory_;
    debug::PageTable &pages_;
    debug::OsModel &os_;
    CpuEnv &env_;
    TmConfig cfg_;
    Rng rng_;

    const isa::Program *program_ = nullptr;
    isa::RegisterFile regs_;
    isa::Psw psw_;
    bool halted_ = false;

    StoreQueue stq_;
    GatheringStoreCache storeCache_;

    /** @name Transaction state @{ */
    struct TxLevel
    {
        bool allowArMod;
        bool allowFprMod;
        std::uint8_t pifc;
    };
    unsigned txDepth_ = 0;
    bool constrained_ = false;
    std::vector<TxLevel> txLevels_;
    std::array<std::uint64_t, isa::numGrs> backupGrs_{};
    std::uint8_t savedGrsm_ = 0;
    Addr tbeginAddr_ = 0;
    std::uint8_t tbeginLength_ = 0;
    bool tdbValid_ = false;
    Addr tdbAddr_ = 0;
    tx::ConstraintChecker checker_;
    /** @} */

    /** @name Stiff-arm / hang-avoidance state @{ */
    unsigned rejectsSinceCompletion_ = 0;
    bool stalledOnReject_ = false;
    /** @} */

    /** Remaining same-cycle slots of the superscalar window. */
    unsigned dispatchCredit_ = 0;

    /** Set by any abort that happens inside this CPU's own step. */
    bool abortedDuringStep_ = false;

    /** @name Sharded-scheduler state (see setLocalOnly) @{ */
    bool localOnly_ = false;
    bool deferredStep_ = false;
    /** Fast-path L3 hits since the last consumeShardL3Hits(). */
    std::uint64_t shardL3Hits_ = 0;
    /** @} */

    /** Commits + region closes + halt; see progressEvents(). */
    std::uint64_t progressEvents_ = 0;

    /** Aborts of any reason; see abortsTotal(). */
    std::uint64_t abortsTotal_ = 0;

    /** @name Millicode state @{ */
    unsigned constrainedAbortCount_ = 0;
    bool soloHeld_ = false;
    /** Escalation: suppress speculative over-marking on retries. */
    bool speculationReduced_ = false;
    std::uint64_t lastAbortCode_ = 0;
    /** @} */

    debug::PerControls per_;
    debug::TdcControl tdc_;

    Cycles pendingStall_ = 0;

    /** @name Region measurement @{ */
    bool regionOpen_ = false;
    Cycles regionStart_ = 0;
    Distribution regionCycles_;
    /** Latency tail of the measured regions (64-cycle buckets). */
    Histogram *regionHist_ = nullptr;
    /** @} */

    /** @name Pending after-completion PER event @{ */
    bool perPending_ = false;
    Addr perPendingAddr_ = 0;
    /** @} */

    /** Op-log sink for OPLOGB/OPLOGE; nullptr when disabled. */
    OpRecorder *opRecorder_ = nullptr;
    /**
     * An OPLOGV executed inside the current transaction: the
     * outermost TEND reports the region's read/write line footprint
     * to opRecorder_ before clearing the TX marks. Cleared on commit
     * and on abort (millicode), so only committed footprints are
     * ever recorded.
     */
    bool versionArmed_ = false;

    StatGroup stats_;
};

} // namespace ztx::core

#endif // ZTX_CORE_CPU_HH
