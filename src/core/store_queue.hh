/**
 * @file
 * The LSU store queue (STQ).
 *
 * Stores execute into the STQ and are written back (to the L1 /
 * gathering store cache) when the instruction completes. Entries
 * carry a transaction mark; loads can forward from the STQ before
 * writeback. On a transaction abort all transactional entries are
 * invalidated, "even those already completed" (paper §III.C).
 *
 * zTX's interpreter completes instructions one at a time, so the
 * queue drains at every instruction boundary; the component is
 * modelled explicitly so its architectural behaviours (forwarding,
 * tx marks, NTSTG marking) are testable in isolation.
 */

#ifndef ZTX_CORE_STORE_QUEUE_HH
#define ZTX_CORE_STORE_QUEUE_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"

namespace ztx::core {

/** A pending store awaiting writeback. */
struct StoreQueueEntry
{
    Addr addr;
    unsigned size;                  ///< 1..8 bytes
    std::uint64_t value;            ///< big-endian integer value
    bool transactional;
    bool nonTransactionalStore;     ///< NTSTG
};

/** FIFO store queue with forwarding. */
class StoreQueue
{
  public:
    StoreQueue() = default;

    /** Enqueue a store at execution time. */
    void push(const StoreQueueEntry &entry);

    /**
     * Forward queued store data into @p buf (host byte order is not
     * used; @p buf is a big-endian byte image of [addr, addr+len)).
     * Newer stores override older ones.
     */
    void overlay(Addr addr, unsigned len, std::uint8_t *buf) const;

    /** Oldest entry, popped for writeback; queue must not be empty. */
    StoreQueueEntry pop();

    /** Drop all transactional entries (transaction abort). */
    void dropTransactional();

    /** Clear transaction marks (transaction end: become normal). */
    void clearTransactionalMarks();

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

  private:
    std::deque<StoreQueueEntry> entries_;
};

} // namespace ztx::core

#endif // ZTX_CORE_STORE_QUEUE_HH
