#include "store_queue.hh"

#include <algorithm>

#include "common/log.hh"

namespace ztx::core {

void
StoreQueue::push(const StoreQueueEntry &entry)
{
    if (entry.size == 0 || entry.size > 8)
        ztx_panic("store queue entry of size ", entry.size);
    entries_.push_back(entry);
}

void
StoreQueue::overlay(Addr addr, unsigned len, std::uint8_t *buf) const
{
    for (const auto &e : entries_) {
        // Byte range intersection of the entry with [addr, addr+len).
        const Addr lo = std::max(addr, e.addr);
        const Addr hi = std::min(addr + len, e.addr + e.size);
        for (Addr b = lo; b < hi; ++b) {
            const unsigned byte_in_entry = unsigned(b - e.addr);
            const unsigned shift = 8 * (e.size - 1 - byte_in_entry);
            buf[b - addr] = std::uint8_t(e.value >> shift);
        }
    }
}

StoreQueueEntry
StoreQueue::pop()
{
    if (entries_.empty())
        ztx_panic("pop from empty store queue");
    StoreQueueEntry e = entries_.front();
    entries_.pop_front();
    return e;
}

void
StoreQueue::dropTransactional()
{
    std::erase_if(entries_, [](const StoreQueueEntry &e) {
        return e.transactional && !e.nonTransactionalStore;
    });
}

void
StoreQueue::clearTransactionalMarks()
{
    for (auto &e : entries_)
        e.transactional = false;
}

} // namespace ztx::core
