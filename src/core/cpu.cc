#include "cpu.hh"

#include <algorithm>
#include <bit>

#include "common/json.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "isa/disasm.hh"
#include "millicode/millicode.hh"
#include "tx/tdb.hh"

namespace ztx::core {

using isa::Opcode;

Cpu::Cpu(CpuId id, mem::Hierarchy &hier, mem::MainMemory &memory,
         debug::PageTable &pages, debug::OsModel &os, CpuEnv &env,
         const TmConfig &config, std::uint64_t seed)
    : id_(id), hier_(hier), memory_(memory), pages_(pages), os_(os),
      env_(env), cfg_(config), rng_(seed),
      storeCache_(config.storeCacheEntries,
                  "cpu" + std::to_string(id) + ".stc"),
      stats_("cpu" + std::to_string(id))
{
    hier_.setClient(id_, this);
    hier_.setLruExtensionEnabled(cfg_.lruExtensionEnabled);
    regionHist_ = &stats_.histogram("region.cycles", 32, 64.0);
}

Cpu::~Cpu() = default;

void
Cpu::setProgram(const isa::Program *program)
{
    program_ = program;
    psw_ = isa::Psw{};
    psw_.ia = program->entry();
    halted_ = false;
}

Addr
Cpu::prefixTdbAddr() const
{
    // Per-CPU prefix area, placed far above any workload data.
    return 0xFFFF'0000'0000ULL + Addr(id_) * 0x1000;
}

bool
Cpu::effAllowArMod() const
{
    for (const auto &level : txLevels_)
        if (!level.allowArMod)
            return false;
    return true;
}

bool
Cpu::effAllowFprMod() const
{
    for (const auto &level : txLevels_)
        if (!level.allowFprMod)
            return false;
    return true;
}

std::uint8_t
Cpu::effPifc() const
{
    std::uint8_t pifc = 0;
    for (const auto &level : txLevels_)
        pifc = std::max(pifc, level.pifc);
    return pifc;
}

Addr
Cpu::effectiveAddr(const isa::Instruction &inst) const
{
    // z-style address generation: GR0 as base/index reads as zero.
    Addr addr = Addr(inst.disp);
    if (inst.base != 0)
        addr += regs_.gr[inst.base];
    if (inst.index != 0)
        addr += regs_.gr[inst.index];
    return addr;
}

Cycles
Cpu::consumePendingStall()
{
    const Cycles stall = pendingStall_;
    pendingStall_ = 0;
    return stall;
}

std::uint64_t
Cpu::readMerged(Addr addr, unsigned size) const
{
    std::uint8_t buf[8] = {};
    memory_.readBlock(addr, buf, size);
    storeCache_.overlay(addr, size, buf);
    stq_.overlay(addr, size, buf);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i)
        value = (value << 8) | buf[i];
    return value;
}

std::uint64_t
Cpu::peekMem(Addr addr, unsigned size) const
{
    return readMerged(addr, size);
}

void
Cpu::drainStores()
{
    storeCache_.drainAll(memory_);
}

void
Cpu::abortTransaction(const AbortContext &ctx)
{
    millicode::MillicodeEngine::transactionAbort(*this, ctx);
}

bool
Cpu::accessLines(Addr addr, unsigned size, bool exclusive,
                 Cycles &cost)
{
    const Addr first = lineAlign(addr);
    const Addr last = lineAlign(addr + size - 1);
    for (Addr line = first; line <= last; line += lineSizeBytes) {
        const mem::AccessResult res =
            hier_.fetch(id_, line, exclusive, localOnly_);
        if (res.deferred) {
            // Parallel phase: the access leaves the private L1/L2.
            // Nothing moved or was charged; the scheduler discards
            // this step's cost and re-runs it at the barrier. Any
            // partial L1 touches/marks above are idempotent.
            deferredStep_ = true;
            return false;
        }
        if (res.shardLocal && !res.rejected &&
            res.source == mem::DataSource::L3)
            ++shardL3Hits_;
        // Pipelining hides most of an L1 hit's use latency.
        cost += (!res.rejected && res.source == mem::DataSource::L1)
                    ? cfg_.l1HitCharge
                    : res.latency;
        if (res.rejected) {
            stalledOnReject_ = true;
            stats_.counter("fetch.rejected").inc();
            return false;
        }
        if (abortedDuringStep_) {
            // Our own install path LRU'd part of the transactional
            // footprint and the transaction is gone.
            return false;
        }
        if (hier_.anyPoisoned() && hier_.poisonedCached(line))
            return handlePoisonedAccess(line, cost);
        if (inTx())
            hier_.markTxRead(id_, line);
    }

    // Speculative over-marking (§III.C): a wrong-path/prefetch load
    // pollutes the tracked read set with a neighbouring line. The
    // millicode escalation turns this off for constrained retries.
    if (inTx() && !speculationReduced_ &&
        cfg_.speculativeOvermarkProb > 0.0 &&
        rng_.nextBool(cfg_.speculativeOvermarkProb)) {
        const Addr spec_line = lineAlign(addr) + lineSizeBytes;
        const mem::AccessResult res =
            hier_.fetch(id_, spec_line, false, localOnly_);
        // A deferred speculative fetch is skipped silently (not
        // retried): whether it defers depends only on cache state,
        // which is identical across host-thread counts, and the RNG
        // draw above is consumed either way.
        if (res.shardLocal && !res.rejected &&
            res.source == mem::DataSource::L3)
            ++shardL3Hits_;
        if (!res.deferred && !res.rejected && !abortedDuringStep_ &&
            inTx()) {
            hier_.markTxRead(id_, spec_line);
            stats_.counter("tx.overmarks").inc();
        }
        if (abortedDuringStep_)
            return false;
    }

    stalledOnReject_ = false;
    return true;
}

std::optional<std::uint64_t>
Cpu::memLoad(Addr addr, unsigned size, Cycles &cost, bool exclusive)
{
    if (pages_.faultsRange(addr, size)) {
        programException(tx::InterruptCode::PageFault, addr, false,
                         cost);
        return std::nullopt;
    }
    if (inConstrainedTx()) {
        if (const auto v = checker_.checkDataAccess(addr, size)) {
            constraintViolation(*v, cost);
            return std::nullopt;
        }
    }
    if (!accessLines(addr, size, exclusive, cost))
        return std::nullopt;
    return readMerged(addr, size);
}

bool
Cpu::perStoreCheck(Addr addr, unsigned size, Cycles &cost)
{
    (void)cost;
    if (per_.storeRange.matches(addr, size) &&
        !(inTx() && per_.suppressInTx)) {
        return true;
    }
    return false;
}

bool
Cpu::memStore(Addr addr, std::uint64_t value, unsigned size,
              bool ntstg, Cycles &cost)
{
    if (pages_.faultsRange(addr, size)) {
        programException(tx::InterruptCode::PageFault, addr, false,
                         cost);
        return false;
    }
    if (inConstrainedTx()) {
        if (const auto v = checker_.checkDataAccess(addr, size)) {
            constraintViolation(*v, cost);
            return false;
        }
    }
    if (!accessLines(addr, size, true, cost))
        return false;

    stq_.push({addr, size, value, inTx(), ntstg});

    // Writeback at completion: drain the STQ into the gathering
    // store cache (and mark tx-dirty lines).
    while (!stq_.empty()) {
        const StoreQueueEntry e = stq_.pop();
        std::uint8_t bytes[8];
        for (unsigned i = 0; i < e.size; ++i)
            bytes[i] = std::uint8_t(e.value >>
                                    (8 * (e.size - 1 - i)));
        const bool ok = storeCache_.store(e.addr, bytes, e.size,
                                          e.transactional,
                                          e.nonTransactionalStore &&
                                              e.transactional,
                                          memory_);
        if (!ok) {
            abortTransaction({.reason = tx::AbortReason::StoreOverflow});
            return false;
        }
    }
    if (inTx()) {
        const Addr first = lineAlign(addr);
        const Addr last = lineAlign(addr + size - 1);
        for (Addr line = first; line <= last; line += lineSizeBytes)
            hier_.markTxDirty(id_, line);
    }
    return true;
}

void
Cpu::osInterrupt(tx::InterruptCode code, Addr addr, bool from_tx,
                 bool from_constrained, Cycles &cost)
{
    cost += cfg_.osInterruptCost;
    stats_.counter("os_interrupts").inc();
    const debug::OsAction action = os_.programInterrupt(
        {id_, code, addr, from_tx, from_constrained});
    if (action == debug::OsAction::Terminate) {
        halted_ = true;
        stats_.counter("terminated").inc();
    }
}

void
Cpu::programException(tx::InterruptCode code, Addr addr,
                      bool instruction_fetch, Cycles &cost)
{
    if (localOnly_) {
        // Interruptions reach the shared OS model; defer the step
        // before any side effect (counter, abort, OS round trip).
        deferredStep_ = true;
        return;
    }
    stats_.counter("program_exceptions").inc();
    if (inTx()) {
        const bool filtered =
            !constrained_ &&
            tx::isFiltered(code, effPifc(), instruction_fetch);
        const bool was_constrained = constrained_;
        AbortContext actx;
        actx.reason = filtered
                          ? tx::AbortReason::FilteredProgramInterrupt
                          : tx::AbortReason::ProgramInterrupt;
        actx.interruptCode = code;
        actx.interruptAddr = addr;
        actx.filtered = filtered;
        abortTransaction(actx);
        if (!filtered)
            osInterrupt(code, addr, true, was_constrained, cost);
    } else {
        osInterrupt(code, addr, false, false, cost);
    }
}

void
Cpu::constraintViolation(tx::ConstraintViolationKind kind,
                         Cycles &cost)
{
    if (localOnly_) {
        // Ends in an OS round trip; defer before any side effect.
        deferredStep_ = true;
        return;
    }
    stats_.counter(std::string("constraint_violation.") +
                   tx::constraintViolationName(kind)).inc();
    // Non-filterable program interruption after the abort (§II.D).
    AbortContext actx;
    actx.reason = tx::AbortReason::ProgramInterrupt;
    actx.interruptCode = tx::InterruptCode::ConstraintViolation;
    actx.interruptAddr = psw_.ia;
    abortTransaction(actx);
    osInterrupt(tx::InterruptCode::ConstraintViolation, psw_.ia, true,
                true, cost);
}

bool
Cpu::handlePoisonedAccess(Addr line, Cycles &cost)
{
    if (localOnly_) {
        // Recovery reaches the shared OS model (and a scrub touches
        // other CPUs' L1 flag mirrors); defer before any side effect.
        deferredStep_ = true;
        return false;
    }
    stats_.counter("machine_checks").inc();
    const bool was_tx = inTx();
    if (was_tx) {
        // Architectural guarantee: data from a poisoned line never
        // commits. Transient (CC2) — the scrub below removes the
        // poison, so a retry is promising (and the constrained-TX
        // eventual-success guarantee holds).
        AbortContext actx;
        actx.reason = tx::AbortReason::DataPoisoned;
        actx.conflictAddr = line;
        actx.conflictValid = true;
        abortTransaction(actx);
    }
    // Machine-check recovery, charged like an OS round trip: attempt
    // the refresh-from-memory scrub, then let the OS decide.
    cost += cfg_.osInterruptCost;
    const bool clean = hier_.scrubLine(line);
    const debug::OsAction action =
        os_.machineCheck({id_, line, clean, was_tx});
    if (action == debug::OsAction::Restart) {
        hier_.reloadLine(line);
        restartWorkload();
    }
    return false;
}

void
Cpu::restartWorkload()
{
    // The GRs survive: workload runners pre-seed arena/base registers
    // before the first step, and a restarted item reuses them.
    drainStores();
    psw_ = isa::Psw{};
    psw_.ia = program_->entry();
    regionOpen_ = false;
    stalledOnReject_ = false;
    rejectsSinceCompletion_ = 0;
    dispatchCredit_ = 0;
    perPending_ = false;
    stats_.counter("workload_restarts").inc();
    ++progressEvents_;
    env_.noteProgress(id_);
}

void
Cpu::deliverExternalInterrupt()
{
    stats_.counter("external_interrupts").inc();
    if (inTx()) {
        abortTransaction({.reason =
                              tx::AbortReason::ExternalInterrupt});
    }
    // OS round trip (timer tick service).
    addStall(cfg_.osInterruptCost);
}

void
Cpu::injectSpuriousAbort()
{
    if (!inTx())
        return;
    stats_.counter("inject.spurious_aborts").inc();
    // Transient (CC2) like the random environmental aborts zEC12
    // millicode tolerates; DiagnosticAbort matches the architected
    // "forced abort with no architectural cause" bucket.
    abortTransaction({.reason = tx::AbortReason::DiagnosticAbort});
}

Json
Cpu::diagnosticJson() const
{
    Json d = Json::object();
    d["id"] = id_;
    d["halted"] = halted_;
    d["psw_ia"] = std::uint64_t(psw_.ia);
    d["psw_cc"] = unsigned(psw_.cc);
    d["in_tx"] = inTx();
    d["nesting_depth"] = txDepth_;
    d["constrained"] = constrained_;
    d["last_abort_code"] = lastAbortCode_;
    d["tdb_addr"] = tdbValid_ ? std::uint64_t(tdbAddr_) : 0;

    // Escalation-ladder position (paper §III.E).
    Json ladder = Json::object();
    ladder["constrained_abort_count"] = constrainedAbortCount_;
    ladder["speculation_reduced"] = speculationReduced_;
    ladder["solo_held"] = soloHeld_;
    d["ladder"] = std::move(ladder);

    d["progress_events"] = progressEvents_;
    Json aborts = Json::object();
    for (const auto &[name, counter] : stats_.counters()) {
        if (name.rfind("tx.abort.", 0) == 0)
            aborts[name.substr(9)] = counter.value();
    }
    d["aborts_by_reason"] = std::move(aborts);
    d["commits"] = stats_.counters().count("tx.commits")
                       ? stats_.counters().at("tx.commits").value()
                       : 0;
    d["rejects_sent"] =
        stats_.counters().count("xi.rejects_sent")
            ? stats_.counters().at("xi.rejects_sent").value()
            : 0;
    // The ADT operation in flight when the machine stopped, if an
    // op log is attached: the watchdog's per-CPU pending window.
    if (opRecorder_)
        d["pending_op"] = opRecorder_->pendingOpJson(id_);
    return d;
}

mem::XiResponse
Cpu::incomingXi(const mem::XiContext &ctx)
{
    stats_.counter("xi.received").inc();
    if (ctx.poisoned)
        stats_.counter("xi.poisoned_seen").inc();
    const bool sc_tx = storeCache_.hasTransactionalLine(ctx.line);
    const bool tx_write = inTx() && (ctx.txDirty || sc_tx);
    const bool tx_read = inTx() && (ctx.txRead || ctx.lruExtHit);

    switch (ctx.kind) {
      case mem::XiKind::Demote:
      case mem::XiKind::Exclusive: {
        // A demote only takes our write permission; tx-read data is
        // still protected. An exclusive XI conflicts with both sets.
        const bool conflict =
            tx_write ||
            (ctx.kind == mem::XiKind::Exclusive && tx_read);
        if (conflict) {
            // Hang avoidance ("the core is not completing further
            // instructions while continuously rejecting XIs"): only
            // rejects issued while this CPU is itself stalled on a
            // rejected access count toward the abort threshold —
            // that is the deadlock-cycle signature. An owner that
            // is merely waiting on a long fetch stiff-arms freely,
            // which the paper notes is very efficient under high
            // contention.
            const unsigned threshold =
                cfg_.xiRejectAbortThreshold + (id_ % 7);
            const bool over_threshold =
                stalledOnReject_ &&
                ++rejectsSinceCompletion_ > threshold;
            // Broadcast-stop: while another CPU holds solo mode,
            // all conflicting work yields to it (paper §III.E).
            const bool yield_to_solo =
                ctx.requester != invalidCpu &&
                ctx.requester == env_.soloHolder();
            if (cfg_.stiffArmEnabled && !over_threshold &&
                !yield_to_solo) {
                stats_.counter("xi.rejects_sent").inc();
                ztx_trace(trace::Category::Xi, "cpu", id_,
                          " rejects ", mem::xiKindName(ctx.kind),
                          " XI line=0x", std::hex, ctx.line);
                return mem::XiResponse::Reject;
            }
            // Hang avoidance (or stiff-arming disabled): abort and
            // let the requester through.
            AbortContext actx;
            actx.reason = tx_write
                              ? tx::AbortReason::StoreConflict
                              : tx::AbortReason::FetchConflict;
            actx.conflictAddr = ctx.line;
            actx.conflictValid = true;
            abortTransaction(actx);
        }
        if (storeCache_.hasAnyLine(ctx.line))
            storeCache_.drainLine(ctx.line, memory_);
        return mem::XiResponse::Accept;
      }
      case mem::XiKind::ReadOnly: {
        if (tx_read) {
            AbortContext actx;
            actx.reason = tx::AbortReason::FetchConflict;
            actx.conflictAddr = ctx.line;
            actx.conflictValid = true;
            abortTransaction(actx);
        }
        return mem::XiResponse::Accept;
      }
      case mem::XiKind::Lru: {
        if (tx_write) {
            abortTransaction({.reason =
                                  tx::AbortReason::CacheStoreRelated});
        } else if (tx_read) {
            abortTransaction({.reason =
                                  tx::AbortReason::CacheFetchRelated});
        }
        if (storeCache_.hasAnyLine(ctx.line))
            storeCache_.drainLine(ctx.line, memory_);
        return mem::XiResponse::Accept;
      }
    }
    return mem::XiResponse::Accept;
}

void
Cpu::l1Evicted(Addr line, std::uint8_t flags)
{
    (void)line;
    if (flags & mem::line_flag::txRead)
        stats_.counter("l1.tx_read_evicted").inc();
}

Cpu::ExecResult
Cpu::beginTransaction(const isa::Program::Slot &slot, bool constrained)
{
    const isa::Instruction &inst = slot.inst;
    ExecResult res;
    res.cost = cfg_.tbeginBaseCost +
               Cycles(std::popcount(inst.grsm)) *
                   cfg_.tbeginPerPairCost;

    if (txDepth_ >= cfg_.maxNestingDepth) {
        abortTransaction({.reason =
                              tx::AbortReason::NestingDepthExceeded});
        res.completed = false;
        return res;
    }

    if (!inTx()) {
        // Outermost begin. TBEGIN's TDB operand gets an
        // accessibility test up front (paper §III.B).
        if (!constrained && inst.base != 0) {
            const Addr tdb_addr = effectiveAddr(inst);
            if (pages_.faultsRange(tdb_addr, tx::tdbSizeBytes)) {
                programException(tx::InterruptCode::PageFault,
                                 tdb_addr, false, res.cost);
                res.completed = false;
                return res;
            }
            tdbValid_ = true;
            tdbAddr_ = tdb_addr;
        } else {
            tdbValid_ = false;
        }
        backupGrs_ = regs_.gr;
        savedGrsm_ = inst.grsm;
        tbeginAddr_ = slot.addr;
        tbeginLength_ = slot.length;
        hier_.clearTxMarks(id_);
        versionArmed_ = false;
        storeCache_.closeAllEntries(memory_);
        constrained_ = constrained;
        if (constrained)
            checker_.begin(slot.addr);
        txLevels_.clear();
        stats_.counter("tx.begins").inc();
        if (constrained)
            stats_.counter("tx.begins_constrained").inc();
    }
    // TBEGINC inside a non-constrained transaction opens a regular
    // non-constrained nesting level (paper §II.D); its implicit
    // controls (F=0, PIFC=0) still join the nest.
    txLevels_.push_back(
        {inst.allowArMod, inst.allowFprMod, inst.pifc});
    ++txDepth_;
    psw_.cc = 0;
    psw_.ia = slot.addr + slot.length;
    ztx_trace(trace::Category::Tx, "cpu", id_, " ",
              constrained ? "TBEGINC" : "TBEGIN", " depth=",
              txDepth_, " ia=0x", std::hex, slot.addr);
    return res;
}

Cpu::ExecResult
Cpu::endTransaction()
{
    ExecResult res;
    res.cost = cfg_.tendCost;

    // Forced diagnostic abort "at latest before the outermost TEND"
    // (TDC mode Always; constrained TXs are exempt, §II.E.3).
    if (!constrained_ && tdc_.mode == debug::TdcMode::Always) {
        abortTransaction({.reason = tx::AbortReason::DiagnosticAbort});
        res.completed = false;
        return res;
    }

    // RAS guarantee: no silently committed corrupt data. A line
    // poisoned *after* its fetch (mid-transaction injection) is
    // caught here, at the last point before stores become visible.
    if (hier_.anyPoisoned()) {
        for (const Addr line : hier_.txFootprintLines(id_)) {
            if (hier_.poisonedCached(line)) {
                handlePoisonedAccess(line, res.cost);
                res.completed = false;
                return res;
            }
        }
    }

    // Version-order recording (OPLOGV armed): report the committed
    // region's read/write line footprint while the TX marks are
    // still live. Host-side work only — zero simulated cost.
    if (versionArmed_ && opRecorder_) {
        std::vector<FootprintAccess> acc;
        for (const Addr line : hier_.txFootprintLines(id_))
            acc.push_back({line, hier_.txDirty(id_, line)});
        // Canonical order: the footprint walk follows cache-array
        // layout, which is not a stable public contract.
        std::sort(acc.begin(), acc.end(),
                  [](const FootprintAccess &a,
                     const FootprintAccess &b) {
                      return a.line < b.line;
                  });
        opRecorder_->opCommit(id_, env_.now(), acc.data(),
                              acc.size());
    }
    versionArmed_ = false;

    stq_.clearTransactionalMarks();
    storeCache_.commitTransaction(memory_);
    hier_.clearTxMarks(id_);
    txDepth_ = 0;
    txLevels_.clear();
    const bool was_constrained = constrained_;
    if (constrained_) {
        checker_.end();
        constrained_ = false;
        millicode::MillicodeEngine::constrainedSuccess(*this);
    }
    stats_.counter("tx.commits").inc();
    if (was_constrained)
        stats_.counter("tx.commits_constrained").inc();
    ++progressEvents_;
    env_.noteProgress(id_);
    psw_.cc = 0;
    ztx_trace(trace::Category::Tx, "cpu", id_, " TEND commit",
              was_constrained ? " (constrained)" : "");
    return res;
}

Cpu::ExecResult
Cpu::execute(const isa::Program::Slot &slot)
{
    const isa::Instruction &inst = slot.inst;
    auto &gr = regs_.gr;
    ExecResult res;
    bool advance = true;

    switch (inst.op) {
      case Opcode::LHI:
        gr[inst.r1] = std::uint64_t(inst.imm);
        break;
      case Opcode::LR:
        gr[inst.r1] = gr[inst.r2];
        break;
      case Opcode::LTR:
        gr[inst.r1] = gr[inst.r2];
        psw_.cc = isa::ccOfSigned(std::int64_t(gr[inst.r1]));
        break;
      case Opcode::LA:
        gr[inst.r1] = effectiveAddr(inst);
        break;
      case Opcode::AHI:
        gr[inst.r1] += std::uint64_t(inst.imm);
        psw_.cc = isa::ccOfSigned(std::int64_t(gr[inst.r1]));
        break;
      case Opcode::AGR:
        gr[inst.r1] += gr[inst.r2];
        psw_.cc = isa::ccOfSigned(std::int64_t(gr[inst.r1]));
        break;
      case Opcode::SGR:
        gr[inst.r1] -= gr[inst.r2];
        psw_.cc = isa::ccOfSigned(std::int64_t(gr[inst.r1]));
        break;
      case Opcode::MSGR:
        gr[inst.r1] *= gr[inst.r2];
        break;
      case Opcode::XGR:
        gr[inst.r1] ^= gr[inst.r2];
        psw_.cc = gr[inst.r1] == 0 ? 0 : 1;
        break;
      case Opcode::NGR:
        gr[inst.r1] &= gr[inst.r2];
        psw_.cc = gr[inst.r1] == 0 ? 0 : 1;
        break;
      case Opcode::OGR:
        gr[inst.r1] |= gr[inst.r2];
        psw_.cc = gr[inst.r1] == 0 ? 0 : 1;
        break;
      case Opcode::SLLG:
        gr[inst.r1] = gr[inst.r2] << (inst.imm & 63);
        break;
      case Opcode::SRLG:
        gr[inst.r1] = gr[inst.r2] >> (inst.imm & 63);
        break;
      case Opcode::CGR:
        psw_.cc = isa::ccOfCompare(std::int64_t(gr[inst.r1]),
                                   std::int64_t(gr[inst.r2]));
        break;
      case Opcode::CGHI:
        psw_.cc = isa::ccOfCompare(std::int64_t(gr[inst.r1]),
                                   inst.imm);
        break;
      case Opcode::DSGR:
        if (gr[inst.r2] == 0) {
            programException(tx::InterruptCode::FixedPointDivide,
                             slot.addr, false, res.cost);
            res.completed = false;
            advance = false;
        } else {
            gr[inst.r1] = std::uint64_t(std::int64_t(gr[inst.r1]) /
                                        std::int64_t(gr[inst.r2]));
        }
        break;

      case Opcode::LG:
      case Opcode::LT:
      case Opcode::LGFO: {
        const Addr addr = effectiveAddr(inst);
        const auto value =
            memLoad(addr, 8, res.cost, inst.op == Opcode::LGFO);
        if (!value) {
            res.completed = false;
            advance = false;
            break;
        }
        gr[inst.r1] = *value;
        if (inst.op == Opcode::LT)
            psw_.cc = isa::ccOfSigned(std::int64_t(*value));
        break;
      }
      case Opcode::STG: {
        const Addr addr = effectiveAddr(inst);
        if (perStoreCheck(addr, 8, res.cost))
            perPendingAddr_ = addr, perPending_ = true;
        if (!memStore(addr, gr[inst.r1], 8, false, res.cost)) {
            res.completed = false;
            advance = false;
        }
        break;
      }
      case Opcode::NTSTG: {
        const Addr addr = effectiveAddr(inst);
        if (addr % 8 != 0)
            ztx_fatal("NTSTG operand must be doubleword aligned");
        if (perStoreCheck(addr, 8, res.cost))
            perPendingAddr_ = addr, perPending_ = true;
        if (!memStore(addr, gr[inst.r1], 8, true, res.cost)) {
            res.completed = false;
            advance = false;
        }
        break;
      }
      case Opcode::CS: {
        const Addr addr = effectiveAddr(inst);
        if (addr % 8 != 0)
            ztx_fatal("CS operand must be doubleword aligned");
        if (pages_.faultsRange(addr, 8)) {
            programException(tx::InterruptCode::PageFault, addr,
                             false, res.cost);
            res.completed = false;
            advance = false;
            break;
        }
        if (inConstrainedTx()) {
            if (const auto v = checker_.checkDataAccess(addr, 8)) {
                constraintViolation(*v, res.cost);
                res.completed = false;
                advance = false;
                break;
            }
        }
        if (!accessLines(addr, 8, true, res.cost)) {
            res.completed = false;
            advance = false;
            break;
        }
        res.cost += cfg_.casExtraCost;
        const std::uint64_t current = readMerged(addr, 8);
        if (current == gr[inst.r1]) {
            if (perStoreCheck(addr, 8, res.cost))
                perPendingAddr_ = addr, perPending_ = true;
            stq_.push({addr, 8, gr[inst.r3], inTx(), false});
            const StoreQueueEntry e = stq_.pop();
            std::uint8_t bytes[8];
            for (unsigned i = 0; i < 8; ++i)
                bytes[i] = std::uint8_t(e.value >> (8 * (7 - i)));
            if (!storeCache_.store(addr, bytes, 8, inTx(), false,
                                   memory_)) {
                abortTransaction(
                    {.reason = tx::AbortReason::StoreOverflow});
                res.completed = false;
                advance = false;
                break;
            }
            if (inTx())
                hier_.markTxDirty(id_, lineAlign(addr));
            psw_.cc = 0;
        } else {
            gr[inst.r1] = current;
            psw_.cc = 1;
        }
        break;
      }

      case Opcode::J:
        psw_.ia = inst.target;
        advance = false;
        break;
      case Opcode::BRC:
        if (isa::ccSelected(inst.mask, psw_.cc)) {
            psw_.ia = inst.target;
            advance = false;
        }
        break;
      case Opcode::BRCT:
        gr[inst.r1] -= 1;
        if (gr[inst.r1] != 0) {
            psw_.ia = inst.target;
            advance = false;
        }
        break;
      case Opcode::CIJ:
        if (isa::ccSelected(inst.mask,
                            isa::ccOfCompare(std::int64_t(gr[inst.r1]),
                                             inst.imm))) {
            psw_.ia = inst.target;
            advance = false;
        }
        break;

      case Opcode::TBEGIN:
        return beginTransaction(slot, false);
      case Opcode::TBEGINC:
        return beginTransaction(slot, true);
      case Opcode::TEND:
        if (!inTx()) {
            psw_.cc = 2;
            break;
        }
        if (txDepth_ > 1) {
            --txDepth_;
            txLevels_.pop_back();
            psw_.cc = 0;
            break;
        }
        res = endTransaction();
        if (res.completed) {
            advance = true;
            // PER TEND event (paper §II.E.2): fires on successful
            // completion of an outermost TEND.
            if (per_.tendEvent) {
                perPending_ = true;
                perPendingAddr_ = slot.addr;
            }
        } else {
            advance = false;
        }
        break;
      case Opcode::TABORT: {
        if (!inTx()) {
            // Special-operation condition outside a transaction.
            programException(tx::InterruptCode::Operation, slot.addr,
                             false, res.cost);
            res.completed = false;
            advance = false;
            break;
        }
        const std::uint64_t code = effectiveAddr(inst);
        AbortContext actx;
        actx.reason = tx::AbortReason::TAbortBase;
        actx.code = code < 256 ? 256 : code;
        abortTransaction(actx);
        res.completed = false;
        advance = false;
        break;
      }
      case Opcode::ETND:
        gr[inst.r1] = txDepth_;
        break;
      case Opcode::PPA:
        res.cost += millicode::MillicodeEngine::ppaDelay(
            *this, gr[inst.r1]);
        break;

      case Opcode::ADB: {
        const double a = std::bit_cast<double>(regs_.fpr[inst.r1]);
        const double b = std::bit_cast<double>(regs_.fpr[inst.r2]);
        regs_.fpr[inst.r1] = std::bit_cast<std::uint64_t>(a + b);
        break;
      }
      case Opcode::LDGR:
        regs_.fpr[inst.r1] = gr[inst.r2];
        break;
      case Opcode::SAR:
        regs_.ar[inst.r1] = std::uint32_t(gr[inst.r2]);
        break;
      case Opcode::EAR:
        gr[inst.r1] = regs_.ar[inst.r2];
        break;
      case Opcode::AP:
        // Packed-decimal stand-in: a low nibble above 9 is an
        // invalid digit -> data exception (group 4, filterable).
        if ((gr[inst.r1] & 0xF) > 9 || (gr[inst.r2] & 0xF) > 9) {
            programException(tx::InterruptCode::DecimalData,
                             slot.addr, false, res.cost);
            res.completed = false;
            advance = false;
        } else {
            gr[inst.r1] += gr[inst.r2];
        }
        break;
      case Opcode::LPSWE:
        // Privileged control operation; a no-op at this level of
        // modelling (restricted-in-TX handling happens in step()).
        stats_.counter("lpswe").inc();
        break;
      case Opcode::INVALID:
        programException(tx::InterruptCode::Operation, slot.addr,
                         false, res.cost);
        res.completed = false;
        advance = false;
        break;

      case Opcode::STCK:
        gr[inst.r1] = env_.now();
        break;
      case Opcode::RAND:
        gr[inst.r1] = rng_.nextBounded(std::uint64_t(inst.imm));
        break;
      case Opcode::MARKB:
        regionOpen_ = true;
        regionStart_ = env_.now();
        res.cost = 0;
        break;
      case Opcode::MARKE:
        if (regionOpen_) {
            const double cycles =
                double(env_.now() - regionStart_);
            regionCycles_.sample(cycles);
            regionHist_->sample(cycles);
            regionOpen_ = false;
            ++progressEvents_;
            env_.noteProgress(id_);
        }
        res.cost = 0;
        break;
      case Opcode::OPLOGB:
        if (opRecorder_) {
            opRecorder_->opInvoke(id_, env_.now(),
                                  std::uint32_t(inst.imm),
                                  gr[inst.r1], gr[inst.r2]);
        }
        res.cost = 0;
        break;
      case Opcode::OPLOGE:
        if (opRecorder_)
            opRecorder_->opResponse(id_, env_.now(), gr[inst.r1]);
        res.cost = 0;
        break;
      case Opcode::OPLOGV:
        if (opRecorder_) {
            if (inTx()) {
                versionArmed_ = true;
            } else {
                // Lock path: the region's "commit" is the lock-line
                // write — record it so lock regions and elided
                // transactions order in the same version chain.
                const FootprintAccess acc{
                    lineAlign(effectiveAddr(inst)), true};
                opRecorder_->opCommit(id_, env_.now(), &acc, 1);
            }
        }
        res.cost = 0;
        break;
      case Opcode::DELAY:
        res.cost = Cycles(std::min<std::uint64_t>(gr[inst.r1], 4096));
        break;
      case Opcode::NOP:
        break;
      case Opcode::HALT:
        drainStores();
        halted_ = true;
        ++progressEvents_;
        env_.noteProgress(id_);
        advance = false;
        break;
    }

    // PER branch event: a successful branch *into* the watched
    // range (z watch-point on branch targets).
    if (!advance && res.completed && !abortedDuringStep_ &&
        isa::opcodeInfo(inst.op).isBranch &&
        per_.branchRange.matches(psw_.ia) &&
        !(inTx() && per_.suppressInTx)) {
        perPending_ = true;
        perPendingAddr_ = psw_.ia;
    }

    if (advance && res.completed && !abortedDuringStep_)
        psw_.ia = slot.addr + slot.length;
    return res;
}

Cycles
Cpu::step()
{
    if (halted_)
        return 0;
    deferredStep_ = false;
    // PER events end in OS round trips (shared OsModel); with any
    // PER control armed, a local-only step cannot rule them out up
    // front, so defer the whole step to the serial barrier phase.
    if (localOnly_ && per_.anyEnabled()) {
        deferredStep_ = true;
        return 0;
    }
    abortedDuringStep_ = false;
    Cycles cost = 0;

    const isa::Program::Slot *slot = program_->fetch(psw_.ia);
    if (!slot) {
        programException(tx::InterruptCode::Operation, psw_.ia, true,
                         cost);
        return std::max<Cycles>(cost, 1);
    }

    // Instruction-fetch page fault: never filtered (§II.C).
    if (pages_.faults(slot->addr)) {
        programException(tx::InterruptCode::PageFault, slot->addr,
                         true, cost);
        return std::max<Cycles>(cost, 1);
    }

    const isa::Instruction &inst = slot->inst;
    const isa::OpcodeInfo &info = isa::opcodeInfo(inst.op);

    // PER instruction-fetch event (after-the-fact, like z PER).
    bool per_ifetch = false;
    if (per_.ifetchRange.matches(slot->addr, slot->length) &&
        !(inTx() && per_.suppressInTx)) {
        per_ifetch = true;
    }

    if (inTx()) {
        if (info.restrictedInTx) {
            abortTransaction(
                {.reason = tx::AbortReason::RestrictedInstruction});
            return std::max<Cycles>(cost, 1);
        }
        if (constrained_) {
            if (const auto v =
                    checker_.checkInstruction(inst, slot->addr)) {
                constraintViolation(*v, cost);
                return std::max<Cycles>(cost, 1);
            }
        }
        if ((info.modifiesAr && !effAllowArMod()) ||
            (info.modifiesFpr && !effAllowFprMod())) {
            abortTransaction(
                {.reason = tx::AbortReason::RestrictedInstruction});
            return std::max<Cycles>(cost, 1);
        }
        // Transaction Diagnostic Control random aborts.
        if (tdc_.mode != debug::TdcMode::Off &&
            inst.op != Opcode::TEND &&
            rng_.nextBool(tdc_.abortProbability)) {
            abortTransaction(
                {.reason = tx::AbortReason::DiagnosticAbort});
            return std::max<Cycles>(cost, 1);
        }
    }

    ztx_trace(trace::Category::Exec, "cpu", id_, " 0x", std::hex,
              slot->addr, std::dec, ": ",
              isa::disassemble(slot->inst));

    const ExecResult res = execute(*slot);
    cost += res.cost;

    if (res.completed && !abortedDuringStep_) {
        rejectsSinceCompletion_ = 0;
        stats_.counter("instructions").inc();
        // Superscalar approximation: up to dispatchWidth simple
        // single-cycle instructions complete per cycle.
        if (res.cost == 1 && cost >= 1) {
            if (dispatchCredit_ > 0) {
                --dispatchCredit_;
                cost -= 1;
            } else if (cfg_.dispatchWidth > 1) {
                dispatchCredit_ = cfg_.dispatchWidth - 1;
            }
        }
        // Deliver pending PER events (store/TEND) and the ifetch
        // event after completion.
        if (perPending_ || per_ifetch) {
            const Addr per_addr =
                perPending_ ? perPendingAddr_ : slot->addr;
            perPending_ = false;
            if (inTx()) {
                const bool was_constrained = constrained_;
                AbortContext actx;
                actx.reason = tx::AbortReason::ProgramInterrupt;
                actx.interruptCode = tx::InterruptCode::PerEvent;
                actx.interruptAddr = per_addr;
                abortTransaction(actx);
                osInterrupt(tx::InterruptCode::PerEvent, per_addr,
                            true, was_constrained, cost);
                if (was_constrained &&
                    os_.autoSuppressPerForConstrained) {
                    per_.suppressInTx = true;
                }
            } else {
                osInterrupt(tx::InterruptCode::PerEvent, per_addr,
                            false, false, cost);
            }
        }
    } else {
        perPending_ = false;
    }
    return cost;
}

} // namespace ztx::core
