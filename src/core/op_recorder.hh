/**
 * @file
 * Host-side sink for the OPLOGB/OPLOGE pseudo-ops: the interface a
 * CPU calls to record ADT operation invoke/response events into a
 * host-visible operation log (workload/op_log.hh implements it as a
 * per-CPU ring buffer).
 *
 * The CPU records at zero cycle cost so attaching a recorder does
 * not perturb simulated timing; with no recorder attached the
 * pseudo-ops are NOPs. Calls happen inside Cpu::step(), so in the
 * sharded scheduler's parallel phase a recorder may be called from
 * several host threads concurrently — implementations must keep
 * per-CPU state disjoint (each CPU only ever passes its own id).
 */

#ifndef ZTX_CORE_OP_RECORDER_HH
#define ZTX_CORE_OP_RECORDER_HH

#include <cstddef>
#include <cstdint>

#include "common/json.hh"
#include "common/types.hh"

namespace ztx::core {

/**
 * One line of a committed region's footprint, as the CPU reports it
 * at commit time (OPLOGV): the line address and whether the region
 * wrote it. The recorder assigns per-line version numbers host-side
 * (workload/op_log.hh).
 */
struct FootprintAccess
{
    Addr line = 0;
    bool write = false;
};

/** Receives operation invoke/response events from the CPUs. */
class OpRecorder
{
  public:
    virtual ~OpRecorder() = default;

    /**
     * An operation was invoked (OPLOGB executed).
     * @param cpu Executing CPU.
     * @param now Global cycle of the invoke.
     * @param code Workload-specific operation code (OPLOGB imm).
     * @param a0 First argument register value.
     * @param a1 Second argument register value.
     */
    virtual void opInvoke(CpuId cpu, Cycles now, std::uint32_t code,
                          std::uint64_t a0, std::uint64_t a1) = 0;

    /**
     * The operation invoked last on @p cpu completed (OPLOGE).
     * @param now Global cycle of the response.
     * @param result Observed result register value.
     */
    virtual void opResponse(CpuId cpu, Cycles now,
                            std::uint64_t result) = 0;

    /**
     * A synchronized region of @p cpu committed (outermost TEND with
     * version recording armed by OPLOGV, or a lock-path OPLOGV)
     * touching the @p n lines in @p acc. Called between opInvoke and
     * opResponse of the operation the commit belongs to; the default
     * ignores footprints so recorders predating version-order
     * recording keep working.
     */
    virtual void
    opCommit(CpuId cpu, Cycles now, const FootprintAccess *acc,
             std::size_t n)
    {
        (void)cpu;
        (void)now;
        (void)acc;
        (void)n;
    }

    /**
     * The operation currently in flight on @p cpu (invoked, no
     * response yet) as a JSON object, or null when none — the
     * watchdog diagnosis bundle dumps this per CPU on a hang.
     */
    virtual Json pendingOpJson(CpuId cpu) const = 0;
};

} // namespace ztx::core

#endif // ZTX_CORE_OP_RECORDER_HH
