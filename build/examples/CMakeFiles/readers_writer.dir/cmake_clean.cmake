file(REMOVE_RECURSE
  "CMakeFiles/readers_writer.dir/readers_writer.cpp.o"
  "CMakeFiles/readers_writer.dir/readers_writer.cpp.o.d"
  "readers_writer"
  "readers_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readers_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
