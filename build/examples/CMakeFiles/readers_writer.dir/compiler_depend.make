# Empty compiler generated dependencies file for readers_writer.
# This may be replaced when dependencies are built.
