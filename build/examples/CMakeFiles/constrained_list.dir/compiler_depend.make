# Empty compiler generated dependencies file for constrained_list.
# This may be replaced when dependencies are built.
