file(REMOVE_RECURSE
  "CMakeFiles/constrained_list.dir/constrained_list.cpp.o"
  "CMakeFiles/constrained_list.dir/constrained_list.cpp.o.d"
  "constrained_list"
  "constrained_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
