# Empty compiler generated dependencies file for lock_elision.
# This may be replaced when dependencies are built.
