file(REMOVE_RECURSE
  "CMakeFiles/lock_elision.dir/lock_elision.cpp.o"
  "CMakeFiles/lock_elision.dir/lock_elision.cpp.o.d"
  "lock_elision"
  "lock_elision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_elision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
