# Empty dependencies file for speculative_optimization.
# This may be replaced when dependencies are built.
