file(REMOVE_RECURSE
  "CMakeFiles/speculative_optimization.dir/speculative_optimization.cpp.o"
  "CMakeFiles/speculative_optimization.dir/speculative_optimization.cpp.o.d"
  "speculative_optimization"
  "speculative_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculative_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
