# Empty dependencies file for debugging_tdb.
# This may be replaced when dependencies are built.
