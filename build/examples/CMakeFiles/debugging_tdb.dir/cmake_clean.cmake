file(REMOVE_RECURSE
  "CMakeFiles/debugging_tdb.dir/debugging_tdb.cpp.o"
  "CMakeFiles/debugging_tdb.dir/debugging_tdb.cpp.o.d"
  "debugging_tdb"
  "debugging_tdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugging_tdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
