# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("mem")
subdirs("isa")
subdirs("tx")
subdirs("core")
subdirs("millicode")
subdirs("debug")
subdirs("sim")
subdirs("locks")
subdirs("workload")
