# Empty compiler generated dependencies file for ztx_core.
# This may be replaced when dependencies are built.
