file(REMOVE_RECURSE
  "CMakeFiles/ztx_core.dir/cpu.cc.o"
  "CMakeFiles/ztx_core.dir/cpu.cc.o.d"
  "CMakeFiles/ztx_core.dir/store_cache.cc.o"
  "CMakeFiles/ztx_core.dir/store_cache.cc.o.d"
  "CMakeFiles/ztx_core.dir/store_queue.cc.o"
  "CMakeFiles/ztx_core.dir/store_queue.cc.o.d"
  "libztx_core.a"
  "libztx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ztx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
