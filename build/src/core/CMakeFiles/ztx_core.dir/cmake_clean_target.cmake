file(REMOVE_RECURSE
  "libztx_core.a"
)
