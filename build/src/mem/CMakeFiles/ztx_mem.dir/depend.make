# Empty dependencies file for ztx_mem.
# This may be replaced when dependencies are built.
