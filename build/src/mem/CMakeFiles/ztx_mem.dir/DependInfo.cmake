
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache_array.cc" "src/mem/CMakeFiles/ztx_mem.dir/cache_array.cc.o" "gcc" "src/mem/CMakeFiles/ztx_mem.dir/cache_array.cc.o.d"
  "/root/repo/src/mem/directory.cc" "src/mem/CMakeFiles/ztx_mem.dir/directory.cc.o" "gcc" "src/mem/CMakeFiles/ztx_mem.dir/directory.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/mem/CMakeFiles/ztx_mem.dir/hierarchy.cc.o" "gcc" "src/mem/CMakeFiles/ztx_mem.dir/hierarchy.cc.o.d"
  "/root/repo/src/mem/main_memory.cc" "src/mem/CMakeFiles/ztx_mem.dir/main_memory.cc.o" "gcc" "src/mem/CMakeFiles/ztx_mem.dir/main_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ztx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
