file(REMOVE_RECURSE
  "CMakeFiles/ztx_mem.dir/cache_array.cc.o"
  "CMakeFiles/ztx_mem.dir/cache_array.cc.o.d"
  "CMakeFiles/ztx_mem.dir/directory.cc.o"
  "CMakeFiles/ztx_mem.dir/directory.cc.o.d"
  "CMakeFiles/ztx_mem.dir/hierarchy.cc.o"
  "CMakeFiles/ztx_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/ztx_mem.dir/main_memory.cc.o"
  "CMakeFiles/ztx_mem.dir/main_memory.cc.o.d"
  "libztx_mem.a"
  "libztx_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ztx_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
