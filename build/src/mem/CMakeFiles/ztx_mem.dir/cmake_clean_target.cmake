file(REMOVE_RECURSE
  "libztx_mem.a"
)
