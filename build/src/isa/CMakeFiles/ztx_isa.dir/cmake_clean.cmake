file(REMOVE_RECURSE
  "CMakeFiles/ztx_isa.dir/assembler.cc.o"
  "CMakeFiles/ztx_isa.dir/assembler.cc.o.d"
  "CMakeFiles/ztx_isa.dir/disasm.cc.o"
  "CMakeFiles/ztx_isa.dir/disasm.cc.o.d"
  "CMakeFiles/ztx_isa.dir/opcodes.cc.o"
  "CMakeFiles/ztx_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/ztx_isa.dir/program.cc.o"
  "CMakeFiles/ztx_isa.dir/program.cc.o.d"
  "libztx_isa.a"
  "libztx_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ztx_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
