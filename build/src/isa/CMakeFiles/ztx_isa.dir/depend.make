# Empty dependencies file for ztx_isa.
# This may be replaced when dependencies are built.
