file(REMOVE_RECURSE
  "libztx_isa.a"
)
