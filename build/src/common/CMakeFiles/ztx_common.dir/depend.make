# Empty dependencies file for ztx_common.
# This may be replaced when dependencies are built.
