file(REMOVE_RECURSE
  "CMakeFiles/ztx_common.dir/log.cc.o"
  "CMakeFiles/ztx_common.dir/log.cc.o.d"
  "CMakeFiles/ztx_common.dir/rng.cc.o"
  "CMakeFiles/ztx_common.dir/rng.cc.o.d"
  "CMakeFiles/ztx_common.dir/stats.cc.o"
  "CMakeFiles/ztx_common.dir/stats.cc.o.d"
  "CMakeFiles/ztx_common.dir/trace.cc.o"
  "CMakeFiles/ztx_common.dir/trace.cc.o.d"
  "libztx_common.a"
  "libztx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ztx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
