file(REMOVE_RECURSE
  "libztx_common.a"
)
