file(REMOVE_RECURSE
  "libztx_workload.a"
)
