# Empty dependencies file for ztx_workload.
# This may be replaced when dependencies are built.
