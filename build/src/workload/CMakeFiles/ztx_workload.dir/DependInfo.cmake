
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/elision.cc" "src/workload/CMakeFiles/ztx_workload.dir/elision.cc.o" "gcc" "src/workload/CMakeFiles/ztx_workload.dir/elision.cc.o.d"
  "/root/repo/src/workload/footprint.cc" "src/workload/CMakeFiles/ztx_workload.dir/footprint.cc.o" "gcc" "src/workload/CMakeFiles/ztx_workload.dir/footprint.cc.o.d"
  "/root/repo/src/workload/hashtable.cc" "src/workload/CMakeFiles/ztx_workload.dir/hashtable.cc.o" "gcc" "src/workload/CMakeFiles/ztx_workload.dir/hashtable.cc.o.d"
  "/root/repo/src/workload/list_set.cc" "src/workload/CMakeFiles/ztx_workload.dir/list_set.cc.o" "gcc" "src/workload/CMakeFiles/ztx_workload.dir/list_set.cc.o.d"
  "/root/repo/src/workload/queue.cc" "src/workload/CMakeFiles/ztx_workload.dir/queue.cc.o" "gcc" "src/workload/CMakeFiles/ztx_workload.dir/queue.cc.o.d"
  "/root/repo/src/workload/report.cc" "src/workload/CMakeFiles/ztx_workload.dir/report.cc.o" "gcc" "src/workload/CMakeFiles/ztx_workload.dir/report.cc.o.d"
  "/root/repo/src/workload/update_bench.cc" "src/workload/CMakeFiles/ztx_workload.dir/update_bench.cc.o" "gcc" "src/workload/CMakeFiles/ztx_workload.dir/update_bench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ztx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/locks/CMakeFiles/ztx_locks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ztx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/millicode/CMakeFiles/ztx_millicode.dir/DependInfo.cmake"
  "/root/repo/build/src/debug/CMakeFiles/ztx_debug.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/ztx_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ztx_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ztx_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ztx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
