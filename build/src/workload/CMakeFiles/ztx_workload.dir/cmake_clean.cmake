file(REMOVE_RECURSE
  "CMakeFiles/ztx_workload.dir/elision.cc.o"
  "CMakeFiles/ztx_workload.dir/elision.cc.o.d"
  "CMakeFiles/ztx_workload.dir/footprint.cc.o"
  "CMakeFiles/ztx_workload.dir/footprint.cc.o.d"
  "CMakeFiles/ztx_workload.dir/hashtable.cc.o"
  "CMakeFiles/ztx_workload.dir/hashtable.cc.o.d"
  "CMakeFiles/ztx_workload.dir/list_set.cc.o"
  "CMakeFiles/ztx_workload.dir/list_set.cc.o.d"
  "CMakeFiles/ztx_workload.dir/queue.cc.o"
  "CMakeFiles/ztx_workload.dir/queue.cc.o.d"
  "CMakeFiles/ztx_workload.dir/report.cc.o"
  "CMakeFiles/ztx_workload.dir/report.cc.o.d"
  "CMakeFiles/ztx_workload.dir/update_bench.cc.o"
  "CMakeFiles/ztx_workload.dir/update_bench.cc.o.d"
  "libztx_workload.a"
  "libztx_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ztx_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
