file(REMOVE_RECURSE
  "CMakeFiles/ztx_tx.dir/abort.cc.o"
  "CMakeFiles/ztx_tx.dir/abort.cc.o.d"
  "CMakeFiles/ztx_tx.dir/constraints.cc.o"
  "CMakeFiles/ztx_tx.dir/constraints.cc.o.d"
  "CMakeFiles/ztx_tx.dir/tdb.cc.o"
  "CMakeFiles/ztx_tx.dir/tdb.cc.o.d"
  "libztx_tx.a"
  "libztx_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ztx_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
