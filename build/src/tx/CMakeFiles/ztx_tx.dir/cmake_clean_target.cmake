file(REMOVE_RECURSE
  "libztx_tx.a"
)
