# Empty dependencies file for ztx_tx.
# This may be replaced when dependencies are built.
