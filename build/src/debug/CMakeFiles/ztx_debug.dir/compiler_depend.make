# Empty compiler generated dependencies file for ztx_debug.
# This may be replaced when dependencies are built.
