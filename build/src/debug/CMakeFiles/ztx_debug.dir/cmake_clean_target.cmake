file(REMOVE_RECURSE
  "libztx_debug.a"
)
