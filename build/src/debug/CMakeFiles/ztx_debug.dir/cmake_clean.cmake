file(REMOVE_RECURSE
  "CMakeFiles/ztx_debug.dir/os_model.cc.o"
  "CMakeFiles/ztx_debug.dir/os_model.cc.o.d"
  "libztx_debug.a"
  "libztx_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ztx_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
