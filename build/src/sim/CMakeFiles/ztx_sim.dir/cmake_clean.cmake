file(REMOVE_RECURSE
  "CMakeFiles/ztx_sim.dir/io_subsystem.cc.o"
  "CMakeFiles/ztx_sim.dir/io_subsystem.cc.o.d"
  "CMakeFiles/ztx_sim.dir/machine.cc.o"
  "CMakeFiles/ztx_sim.dir/machine.cc.o.d"
  "libztx_sim.a"
  "libztx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ztx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
