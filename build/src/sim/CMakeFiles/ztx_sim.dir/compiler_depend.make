# Empty compiler generated dependencies file for ztx_sim.
# This may be replaced when dependencies are built.
