file(REMOVE_RECURSE
  "libztx_sim.a"
)
