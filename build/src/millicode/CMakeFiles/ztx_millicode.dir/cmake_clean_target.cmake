file(REMOVE_RECURSE
  "libztx_millicode.a"
)
