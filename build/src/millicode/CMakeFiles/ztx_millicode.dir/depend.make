# Empty dependencies file for ztx_millicode.
# This may be replaced when dependencies are built.
