file(REMOVE_RECURSE
  "CMakeFiles/ztx_millicode.dir/millicode.cc.o"
  "CMakeFiles/ztx_millicode.dir/millicode.cc.o.d"
  "libztx_millicode.a"
  "libztx_millicode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ztx_millicode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
