# Empty compiler generated dependencies file for ztx_locks.
# This may be replaced when dependencies are built.
