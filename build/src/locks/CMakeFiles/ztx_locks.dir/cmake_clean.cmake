file(REMOVE_RECURSE
  "CMakeFiles/ztx_locks.dir/lock_gen.cc.o"
  "CMakeFiles/ztx_locks.dir/lock_gen.cc.o.d"
  "libztx_locks.a"
  "libztx_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ztx_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
