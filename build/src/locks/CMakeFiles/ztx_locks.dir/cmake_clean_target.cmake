file(REMOVE_RECURSE
  "libztx_locks.a"
)
