file(REMOVE_RECURSE
  "CMakeFiles/fig5a.dir/fig5a.cc.o"
  "CMakeFiles/fig5a.dir/fig5a.cc.o.d"
  "fig5a"
  "fig5a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
