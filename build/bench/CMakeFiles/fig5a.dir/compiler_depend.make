# Empty compiler generated dependencies file for fig5a.
# This may be replaced when dependencies are built.
