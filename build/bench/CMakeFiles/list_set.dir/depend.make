# Empty dependencies file for list_set.
# This may be replaced when dependencies are built.
