file(REMOVE_RECURSE
  "CMakeFiles/list_set.dir/list_set_bench.cc.o"
  "CMakeFiles/list_set.dir/list_set_bench.cc.o.d"
  "list_set"
  "list_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
