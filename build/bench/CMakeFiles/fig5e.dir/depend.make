# Empty dependencies file for fig5e.
# This may be replaced when dependencies are built.
