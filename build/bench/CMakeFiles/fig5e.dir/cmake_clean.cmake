file(REMOVE_RECURSE
  "CMakeFiles/fig5e.dir/fig5e.cc.o"
  "CMakeFiles/fig5e.dir/fig5e.cc.o.d"
  "fig5e"
  "fig5e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
