# Empty dependencies file for fig5f.
# This may be replaced when dependencies are built.
