file(REMOVE_RECURSE
  "CMakeFiles/fig5f.dir/fig5f.cc.o"
  "CMakeFiles/fig5f.dir/fig5f.cc.o.d"
  "fig5f"
  "fig5f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
