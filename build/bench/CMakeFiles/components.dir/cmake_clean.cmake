file(REMOVE_RECURSE
  "CMakeFiles/components.dir/components.cc.o"
  "CMakeFiles/components.dir/components.cc.o.d"
  "components"
  "components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
