# Empty compiler generated dependencies file for components.
# This may be replaced when dependencies are built.
