# Empty dependencies file for queue.
# This may be replaced when dependencies are built.
