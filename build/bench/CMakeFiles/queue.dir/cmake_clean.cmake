file(REMOVE_RECURSE
  "CMakeFiles/queue.dir/queue_bench.cc.o"
  "CMakeFiles/queue.dir/queue_bench.cc.o.d"
  "queue"
  "queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
