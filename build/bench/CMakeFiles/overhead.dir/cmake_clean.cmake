file(REMOVE_RECURSE
  "CMakeFiles/overhead.dir/overhead.cc.o"
  "CMakeFiles/overhead.dir/overhead.cc.o.d"
  "overhead"
  "overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
