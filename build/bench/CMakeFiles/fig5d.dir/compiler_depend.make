# Empty compiler generated dependencies file for fig5d.
# This may be replaced when dependencies are built.
