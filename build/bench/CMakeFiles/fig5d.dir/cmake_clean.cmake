file(REMOVE_RECURSE
  "CMakeFiles/fig5d.dir/fig5d.cc.o"
  "CMakeFiles/fig5d.dir/fig5d.cc.o.d"
  "fig5d"
  "fig5d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
