
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5d.cc" "bench/CMakeFiles/fig5d.dir/fig5d.cc.o" "gcc" "bench/CMakeFiles/fig5d.dir/fig5d.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/ztx_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ztx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ztx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/millicode/CMakeFiles/ztx_millicode.dir/DependInfo.cmake"
  "/root/repo/build/src/debug/CMakeFiles/ztx_debug.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/ztx_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ztx_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/locks/CMakeFiles/ztx_locks.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ztx_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ztx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
