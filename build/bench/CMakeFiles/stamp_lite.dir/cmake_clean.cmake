file(REMOVE_RECURSE
  "CMakeFiles/stamp_lite.dir/stamp_lite.cc.o"
  "CMakeFiles/stamp_lite.dir/stamp_lite.cc.o.d"
  "stamp_lite"
  "stamp_lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
