# Empty dependencies file for stamp_lite.
# This may be replaced when dependencies are built.
