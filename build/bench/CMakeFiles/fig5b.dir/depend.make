# Empty dependencies file for fig5b.
# This may be replaced when dependencies are built.
