file(REMOVE_RECURSE
  "CMakeFiles/fig5b.dir/fig5b.cc.o"
  "CMakeFiles/fig5b.dir/fig5b.cc.o.d"
  "fig5b"
  "fig5b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
