# Empty dependencies file for fig5c.
# This may be replaced when dependencies are built.
