file(REMOVE_RECURSE
  "CMakeFiles/fig5c.dir/fig5c.cc.o"
  "CMakeFiles/fig5c.dir/fig5c.cc.o.d"
  "fig5c"
  "fig5c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
