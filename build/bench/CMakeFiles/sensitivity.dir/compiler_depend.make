# Empty compiler generated dependencies file for sensitivity.
# This may be replaced when dependencies are built.
