file(REMOVE_RECURSE
  "CMakeFiles/sensitivity.dir/sensitivity.cc.o"
  "CMakeFiles/sensitivity.dir/sensitivity.cc.o.d"
  "sensitivity"
  "sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
