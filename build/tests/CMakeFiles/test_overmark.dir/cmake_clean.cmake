file(REMOVE_RECURSE
  "CMakeFiles/test_overmark.dir/test_overmark.cc.o"
  "CMakeFiles/test_overmark.dir/test_overmark.cc.o.d"
  "test_overmark"
  "test_overmark.pdb"
  "test_overmark[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
