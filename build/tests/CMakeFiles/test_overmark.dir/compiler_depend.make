# Empty compiler generated dependencies file for test_overmark.
# This may be replaced when dependencies are built.
