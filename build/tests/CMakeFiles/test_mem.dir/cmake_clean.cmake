file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/test_cache_array.cc.o"
  "CMakeFiles/test_mem.dir/test_cache_array.cc.o.d"
  "CMakeFiles/test_mem.dir/test_directory.cc.o"
  "CMakeFiles/test_mem.dir/test_directory.cc.o.d"
  "CMakeFiles/test_mem.dir/test_hierarchy.cc.o"
  "CMakeFiles/test_mem.dir/test_hierarchy.cc.o.d"
  "CMakeFiles/test_mem.dir/test_main_memory.cc.o"
  "CMakeFiles/test_mem.dir/test_main_memory.cc.o.d"
  "CMakeFiles/test_mem.dir/test_topology.cc.o"
  "CMakeFiles/test_mem.dir/test_topology.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
