file(REMOVE_RECURSE
  "CMakeFiles/test_mem_property.dir/test_mem_property.cc.o"
  "CMakeFiles/test_mem_property.dir/test_mem_property.cc.o.d"
  "test_mem_property"
  "test_mem_property.pdb"
  "test_mem_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
