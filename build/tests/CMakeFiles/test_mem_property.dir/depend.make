# Empty dependencies file for test_mem_property.
# This may be replaced when dependencies are built.
