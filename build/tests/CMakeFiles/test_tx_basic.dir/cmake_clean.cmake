file(REMOVE_RECURSE
  "CMakeFiles/test_tx_basic.dir/test_tx_basic.cc.o"
  "CMakeFiles/test_tx_basic.dir/test_tx_basic.cc.o.d"
  "test_tx_basic"
  "test_tx_basic.pdb"
  "test_tx_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tx_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
