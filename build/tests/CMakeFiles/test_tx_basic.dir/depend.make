# Empty dependencies file for test_tx_basic.
# This may be replaced when dependencies are built.
