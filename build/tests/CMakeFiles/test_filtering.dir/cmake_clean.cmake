file(REMOVE_RECURSE
  "CMakeFiles/test_filtering.dir/test_filtering.cc.o"
  "CMakeFiles/test_filtering.dir/test_filtering.cc.o.d"
  "test_filtering"
  "test_filtering.pdb"
  "test_filtering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
