# Empty compiler generated dependencies file for test_filtering.
# This may be replaced when dependencies are built.
