file(REMOVE_RECURSE
  "CMakeFiles/test_footprint.dir/test_footprint.cc.o"
  "CMakeFiles/test_footprint.dir/test_footprint.cc.o.d"
  "test_footprint"
  "test_footprint.pdb"
  "test_footprint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
