# Empty compiler generated dependencies file for test_footprint.
# This may be replaced when dependencies are built.
