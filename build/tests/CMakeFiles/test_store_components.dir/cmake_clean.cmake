file(REMOVE_RECURSE
  "CMakeFiles/test_store_components.dir/test_store_components.cc.o"
  "CMakeFiles/test_store_components.dir/test_store_components.cc.o.d"
  "test_store_components"
  "test_store_components.pdb"
  "test_store_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
