# Empty dependencies file for test_store_components.
# This may be replaced when dependencies are built.
