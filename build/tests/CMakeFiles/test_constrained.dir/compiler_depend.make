# Empty compiler generated dependencies file for test_constrained.
# This may be replaced when dependencies are built.
