file(REMOVE_RECURSE
  "CMakeFiles/test_constrained.dir/test_constrained.cc.o"
  "CMakeFiles/test_constrained.dir/test_constrained.cc.o.d"
  "test_constrained"
  "test_constrained.pdb"
  "test_constrained[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
