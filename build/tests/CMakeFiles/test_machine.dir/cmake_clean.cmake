file(REMOVE_RECURSE
  "CMakeFiles/test_machine.dir/test_machine.cc.o"
  "CMakeFiles/test_machine.dir/test_machine.cc.o.d"
  "test_machine"
  "test_machine.pdb"
  "test_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
