file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/test_rng.cc.o"
  "CMakeFiles/test_common.dir/test_rng.cc.o.d"
  "CMakeFiles/test_common.dir/test_stats.cc.o"
  "CMakeFiles/test_common.dir/test_stats.cc.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
