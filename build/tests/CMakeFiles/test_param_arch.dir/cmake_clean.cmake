file(REMOVE_RECURSE
  "CMakeFiles/test_param_arch.dir/test_param_arch.cc.o"
  "CMakeFiles/test_param_arch.dir/test_param_arch.cc.o.d"
  "test_param_arch"
  "test_param_arch.pdb"
  "test_param_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
