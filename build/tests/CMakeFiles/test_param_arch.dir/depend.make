# Empty dependencies file for test_param_arch.
# This may be replaced when dependencies are built.
