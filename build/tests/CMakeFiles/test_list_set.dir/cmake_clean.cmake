file(REMOVE_RECURSE
  "CMakeFiles/test_list_set.dir/test_list_set.cc.o"
  "CMakeFiles/test_list_set.dir/test_list_set.cc.o.d"
  "test_list_set"
  "test_list_set.pdb"
  "test_list_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_list_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
