# Empty dependencies file for test_list_set.
# This may be replaced when dependencies are built.
