# Empty compiler generated dependencies file for test_debug.
# This may be replaced when dependencies are built.
