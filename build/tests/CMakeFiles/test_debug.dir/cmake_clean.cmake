file(REMOVE_RECURSE
  "CMakeFiles/test_debug.dir/test_debug.cc.o"
  "CMakeFiles/test_debug.dir/test_debug.cc.o.d"
  "test_debug"
  "test_debug.pdb"
  "test_debug[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
