file(REMOVE_RECURSE
  "CMakeFiles/test_locks.dir/test_locks.cc.o"
  "CMakeFiles/test_locks.dir/test_locks.cc.o.d"
  "test_locks"
  "test_locks.pdb"
  "test_locks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
