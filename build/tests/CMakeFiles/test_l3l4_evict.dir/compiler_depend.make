# Empty compiler generated dependencies file for test_l3l4_evict.
# This may be replaced when dependencies are built.
