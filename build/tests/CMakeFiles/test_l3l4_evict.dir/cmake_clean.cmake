file(REMOVE_RECURSE
  "CMakeFiles/test_l3l4_evict.dir/test_l3l4_evict.cc.o"
  "CMakeFiles/test_l3l4_evict.dir/test_l3l4_evict.cc.o.d"
  "test_l3l4_evict"
  "test_l3l4_evict.pdb"
  "test_l3l4_evict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l3l4_evict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
