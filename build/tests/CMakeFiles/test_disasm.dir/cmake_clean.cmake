file(REMOVE_RECURSE
  "CMakeFiles/test_disasm.dir/test_disasm.cc.o"
  "CMakeFiles/test_disasm.dir/test_disasm.cc.o.d"
  "test_disasm"
  "test_disasm.pdb"
  "test_disasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
