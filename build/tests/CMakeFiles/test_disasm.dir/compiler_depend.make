# Empty compiler generated dependencies file for test_disasm.
# This may be replaced when dependencies are built.
