# Empty dependencies file for test_cpu_basic.
# This may be replaced when dependencies are built.
