file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_basic.dir/test_cpu_basic.cc.o"
  "CMakeFiles/test_cpu_basic.dir/test_cpu_basic.cc.o.d"
  "test_cpu_basic"
  "test_cpu_basic.pdb"
  "test_cpu_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
