# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_basic[1]_include.cmake")
include("/root/repo/build/tests/test_tx_basic[1]_include.cmake")
include("/root/repo/build/tests/test_constrained[1]_include.cmake")
include("/root/repo/build/tests/test_filtering[1]_include.cmake")
include("/root/repo/build/tests/test_debug[1]_include.cmake")
include("/root/repo/build/tests/test_store_components[1]_include.cmake")
include("/root/repo/build/tests/test_footprint[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_locks[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_mem_property[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_disasm[1]_include.cmake")
include("/root/repo/build/tests/test_overmark[1]_include.cmake")
include("/root/repo/build/tests/test_param_arch[1]_include.cmake")
include("/root/repo/build/tests/test_list_set[1]_include.cmake")
include("/root/repo/build/tests/test_l3l4_evict[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
